// Package solver provides exact reference algorithms for the File-Bundle
// Caching (FBC) problem of §4: a branch-and-bound optimal solver for small
// instances, a 0/1 knapsack dynamic program for the special case where each
// file belongs to exactly one request, and the Dense-k-Subgraph reduction
// used in the paper's NP-hardness proof.
//
// These exist to validate the OptCacheSelect approximation bound
// (Theorem 4.1) experimentally; they are exponential/pseudo-polynomial and
// intended for instances of at most a few dozen requests.
package solver

import (
	"fmt"
	"math"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
)

// Solution is an exact optimum of an FBC instance.
type Solution struct {
	Value  float64
	Chosen []int // candidate indices, ascending
	Files  bundle.Bundle
}

// MaxExactRequests bounds the instance size SolveExact accepts.
const MaxExactRequests = 40

// SolveExact computes the optimal request subset by branch and bound.
// It panics if the instance exceeds MaxExactRequests (the search is
// exponential in the worst case).
func SolveExact(cands []core.Candidate, capacity bundle.Size, sizeOf bundle.SizeFunc) Solution {
	if len(cands) > MaxExactRequests {
		panic(fmt.Sprintf("solver: %d requests exceeds MaxExactRequests=%d", len(cands), MaxExactRequests))
	}
	if sizeOf == nil {
		panic("solver: nil SizeFunc")
	}
	if capacity < 0 {
		capacity = 0
	}

	// Order candidates by value density so good solutions are found early and
	// pruning bites. Keep original indices for the answer.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	density := func(i int) float64 {
		s := cands[i].Bundle.TotalSize(sizeOf)
		if s <= 0 {
			// A zero-size bundle occupies no capacity: any positive value makes
			// it infinitely dense, and a worthless one sorts last. Dividing
			// would yield NaN/±Inf by accident; make the ordering explicit.
			if cands[i].Value > 0 {
				return math.Inf(1)
			}
			return 0
		}
		return cands[i].Value / float64(s)
	}
	sort.SliceStable(order, func(a, b int) bool { return density(order[a]) > density(order[b]) })

	// suffixValue[k] = total value of order[k:], an admissible upper bound.
	suffixValue := make([]float64, len(order)+1)
	for k := len(order) - 1; k >= 0; k-- {
		suffixValue[k] = suffixValue[k+1] + cands[order[k]].Value
	}

	best := Solution{}
	chosenFiles := make(map[bundle.FileID]bool)
	var chosen []int
	var used bundle.Size

	var dfs func(k int, value float64)
	dfs = func(k int, value float64) {
		if value > best.Value {
			best.Value = value
			best.Chosen = append([]int(nil), chosen...)
			files := make([]bundle.FileID, 0, len(chosenFiles))
			for f := range chosenFiles {
				files = append(files, f)
			}
			sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
			best.Files = bundle.FromSlice(files)
		}
		if k == len(order) || value+suffixValue[k] <= best.Value {
			return
		}
		idx := order[k]
		// Branch 1: include, if the incremental files fit.
		var inc bundle.Size
		var added []bundle.FileID
		for _, f := range cands[idx].Bundle {
			if !chosenFiles[f] {
				inc += sizeOf(f)
				added = append(added, f)
			}
		}
		if used+inc <= capacity {
			for _, f := range added {
				chosenFiles[f] = true
			}
			used += inc
			chosen = append(chosen, idx)
			dfs(k+1, value+cands[idx].Value)
			chosen = chosen[:len(chosen)-1]
			used -= inc
			for _, f := range added {
				delete(chosenFiles, f)
			}
		}
		// Branch 2: exclude.
		dfs(k+1, value)
	}
	dfs(0, 0)
	sort.Ints(best.Chosen)
	return best
}

// KnapsackItem is one item of a 0/1 knapsack instance.
type KnapsackItem struct {
	Value  float64
	Weight int64
}

// maxDPCapacity bounds the Knapsack DP table. The solver is pseudo-polynomial
// in the capacity; past ~1 GiB of table the exact DP is the wrong tool anyway.
const maxDPCapacity = 1 << 30

// Knapsack solves 0/1 knapsack exactly by dynamic programming over capacity.
// It returns the optimal value and the chosen item indices (ascending).
// Negative-weight items are rejected with a panic; zero-weight items are
// always taken when their value is positive.
func Knapsack(items []KnapsackItem, capacity int64) (float64, []int) {
	if capacity < 0 {
		capacity = 0
	}
	for i, it := range items {
		if it.Weight < 0 {
			panic(fmt.Sprintf("solver: item %d has negative weight", i))
		}
	}
	if capacity > maxDPCapacity {
		panic(fmt.Sprintf("solver: knapsack capacity %d exceeds %d; the pseudo-polynomial DP table would not fit", capacity, maxDPCapacity))
	}
	w := int(capacity) //fbvet:allow sizeunits — bounds-checked against maxDPCapacity above
	dp := make([]float64, w+1)
	take := make([][]bool, len(items))
	for i, it := range items {
		take[i] = make([]bool, w+1)
		if it.Weight > capacity {
			continue
		}
		wt := int(it.Weight) //fbvet:allow sizeunits — Weight <= capacity <= maxDPCapacity here
		for c := w; c >= wt; c-- {
			if cand := dp[c-wt] + it.Value; cand > dp[c] {
				dp[c] = cand
				take[i][c] = true
			}
		}
	}
	// Recover choices.
	var chosen []int
	c := w
	for i := len(items) - 1; i >= 0; i-- {
		if take[i][c] {
			chosen = append(chosen, i)
			c -= int(items[i].Weight) //fbvet:allow sizeunits — taken items have Weight <= capacity <= maxDPCapacity
		}
	}
	sort.Ints(chosen)
	return dp[w], chosen
}

// Edge is an undirected graph edge for the DKS reduction.
type Edge struct{ U, V int }

// DKSToFBC performs the paper's §4 reduction from Dense-k-Subgraph to FBC:
// each vertex becomes a unit-size file, each edge a 2-file request of value
// 1, and the cache capacity is k. A solution to the FBC instance of value m
// selects k vertices inducing m edges.
func DKSToFBC(numVertices int, edges []Edge, k int) ([]core.Candidate, bundle.Size, bundle.SizeFunc) {
	cands := make([]core.Candidate, 0, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.V < 0 || e.U >= numVertices || e.V >= numVertices || e.U == e.V {
			panic(fmt.Sprintf("solver: bad edge %+v for %d vertices", e, numVertices))
		}
		cands = append(cands, core.Candidate{
			Bundle: bundle.New(bundle.FileID(e.U), bundle.FileID(e.V)),
			Value:  1,
		})
	}
	return cands, bundle.Size(k), func(bundle.FileID) bundle.Size { return 1 }
}

// MaxDegree computes d — the largest number of candidates sharing one file —
// the constant in the Theorem 4.1 bound.
func MaxDegree(cands []core.Candidate) int {
	deg := make(map[bundle.FileID]int)
	max := 0
	for _, c := range cands {
		for _, f := range c.Bundle {
			deg[f]++
			if deg[f] > max {
				max = deg[f]
			}
		}
	}
	return max
}
