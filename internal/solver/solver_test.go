package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
)

func unit(bundle.FileID) bundle.Size { return 1 }

func TestSolveExactPaperExample(t *testing.T) {
	cands := []core.Candidate{
		{Bundle: bundle.New(1, 3, 5), Value: 1},
		{Bundle: bundle.New(2, 4, 6, 7), Value: 1},
		{Bundle: bundle.New(1, 5), Value: 1},
		{Bundle: bundle.New(4, 6, 7), Value: 1},
		{Bundle: bundle.New(3, 5), Value: 1},
		{Bundle: bundle.New(5, 6, 7), Value: 1},
	}
	sol := SolveExact(cands, 3, unit)
	if sol.Value != 3 {
		t.Errorf("OPT = %v, want 3 (r1,r3,r5 in {f1,f3,f5})", sol.Value)
	}
	if !sol.Files.Equal(bundle.New(1, 3, 5)) {
		t.Errorf("Files = %v, want {f1,f3,f5}", sol.Files)
	}
}

func TestSolveExactEmptyAndDegenerate(t *testing.T) {
	sol := SolveExact(nil, 10, unit)
	if sol.Value != 0 || len(sol.Chosen) != 0 {
		t.Errorf("empty: %+v", sol)
	}
	sol = SolveExact([]core.Candidate{{Bundle: bundle.New(1), Value: 5}}, 0, unit)
	if sol.Value != 0 {
		t.Errorf("zero capacity: %+v", sol)
	}
	sol = SolveExact([]core.Candidate{{Bundle: bundle.New(1), Value: 5}}, -3, unit)
	if sol.Value != 0 {
		t.Errorf("negative capacity: %+v", sol)
	}
	// Zero-size bundle always fits.
	zero := func(bundle.FileID) bundle.Size { return 0 }
	sol = SolveExact([]core.Candidate{{Bundle: bundle.New(1), Value: 5}}, 0, zero)
	if sol.Value != 5 {
		t.Errorf("zero-size: %+v", sol)
	}
}

func TestSolveExactSharedFiles(t *testing.T) {
	// Three requests sharing f1: optimal packs all three in capacity 4.
	cands := []core.Candidate{
		{Bundle: bundle.New(1, 2), Value: 1},
		{Bundle: bundle.New(1, 3), Value: 1},
		{Bundle: bundle.New(1, 4), Value: 1},
	}
	sol := SolveExact(cands, 4, unit)
	if sol.Value != 3 {
		t.Errorf("OPT = %v, want 3", sol.Value)
	}
	if len(sol.Chosen) != 3 {
		t.Errorf("Chosen = %v", sol.Chosen)
	}
}

func TestSolveExactTooLargePanics(t *testing.T) {
	cands := make([]core.Candidate, MaxExactRequests+1)
	for i := range cands {
		cands[i] = core.Candidate{Bundle: bundle.New(bundle.FileID(i)), Value: 1}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SolveExact(cands, 5, unit)
}

func TestKnapsackClassic(t *testing.T) {
	items := []KnapsackItem{
		{Value: 60, Weight: 10},
		{Value: 100, Weight: 20},
		{Value: 120, Weight: 30},
	}
	v, chosen := Knapsack(items, 50)
	if v != 220 {
		t.Errorf("value = %v, want 220", v)
	}
	if len(chosen) != 2 || chosen[0] != 1 || chosen[1] != 2 {
		t.Errorf("chosen = %v, want [1 2]", chosen)
	}
}

func TestKnapsackEdgeCases(t *testing.T) {
	if v, c := Knapsack(nil, 10); v != 0 || len(c) != 0 {
		t.Errorf("empty: %v %v", v, c)
	}
	if v, _ := Knapsack([]KnapsackItem{{Value: 5, Weight: 3}}, 0); v != 0 {
		t.Errorf("zero capacity: %v", v)
	}
	if v, _ := Knapsack([]KnapsackItem{{Value: 5, Weight: 0}}, 0); v != 5 {
		t.Errorf("zero weight: %v", v)
	}
	if v, _ := Knapsack([]KnapsackItem{{Value: 5, Weight: 3}}, -1); v != 0 {
		t.Errorf("negative capacity: %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative weight must panic")
		}
	}()
	Knapsack([]KnapsackItem{{Value: 1, Weight: -1}}, 5)
}

// When every file belongs to exactly one request, FBC is a knapsack
// (§4 first reduction). The exact solver and the DP must agree.
func TestExactMatchesKnapsackOnDisjointInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		cands := make([]core.Candidate, n)
		items := make([]KnapsackItem, n)
		sizes := make(map[bundle.FileID]bundle.Size)
		next := bundle.FileID(0)
		for i := 0; i < n; i++ {
			k := 1 + rng.Intn(3)
			ids := make([]bundle.FileID, k)
			var w int64
			for j := 0; j < k; j++ {
				ids[j] = next
				s := bundle.Size(1 + rng.Intn(5))
				sizes[next] = s
				w += int64(s)
				next++
			}
			v := float64(1 + rng.Intn(20))
			cands[i] = core.Candidate{Bundle: bundle.New(ids...), Value: v}
			items[i] = KnapsackItem{Value: v, Weight: w}
		}
		capacity := bundle.Size(1 + rng.Intn(30))
		sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }
		exact := SolveExact(cands, capacity, sizeOf)
		kv, _ := Knapsack(items, int64(capacity))
		if math.Abs(exact.Value-kv) > 1e-9 {
			t.Fatalf("trial %d: exact %v != knapsack %v", trial, exact.Value, kv)
		}
	}
}

func TestDKSReduction(t *testing.T) {
	// K4 on vertices 0..3 (6 edges). DKS with k=3 -> any triangle: 3 edges.
	var edges []Edge
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			edges = append(edges, Edge{u, v})
		}
	}
	cands, cap3, sizeOf := DKSToFBC(4, edges, 3)
	sol := SolveExact(cands, cap3, sizeOf)
	if sol.Value != 3 {
		t.Errorf("DKS k=3 on K4: OPT = %v, want 3 (a triangle)", sol.Value)
	}
	if sol.Files.Len() != 3 {
		t.Errorf("vertex set size = %d, want 3", sol.Files.Len())
	}
	// k=4: the whole K4, 6 edges.
	cands, cap4, sizeOf := DKSToFBC(4, edges, 4)
	sol = SolveExact(cands, cap4, sizeOf)
	if sol.Value != 6 {
		t.Errorf("DKS k=4 on K4: OPT = %v, want 6", sol.Value)
	}
}

func TestDKSBadEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DKSToFBC(2, []Edge{{0, 5}}, 1)
}

func TestMaxDegree(t *testing.T) {
	cands := []core.Candidate{
		{Bundle: bundle.New(1, 2)},
		{Bundle: bundle.New(1, 3)},
		{Bundle: bundle.New(1, 4)},
		{Bundle: bundle.New(2, 3)},
	}
	if got := MaxDegree(cands); got != 3 {
		t.Errorf("MaxDegree = %d, want 3 (f1)", got)
	}
	if got := MaxDegree(nil); got != 0 {
		t.Errorf("MaxDegree(nil) = %d", got)
	}
}

// The central property: greedy OptCacheSelect with the Step-3 guard achieves
// at least ½(1−e^{−1/d})·OPT on random instances, and the resort variant plus
// k=2 seeding achieves (1−e^{−1/d})·OPT.
func TestQuickTheorem41Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	instance := func() ([]core.Candidate, bundle.Size, bundle.SizeFunc) {
		nFiles := 4 + rng.Intn(8)
		sizes := make([]bundle.Size, nFiles)
		for i := range sizes {
			sizes[i] = bundle.Size(1 + rng.Intn(6))
		}
		n := 2 + rng.Intn(8)
		cands := make([]core.Candidate, n)
		for i := range cands {
			k := 1 + rng.Intn(3)
			ids := make([]bundle.FileID, k)
			for j := range ids {
				ids[j] = bundle.FileID(rng.Intn(nFiles))
			}
			cands[i] = core.Candidate{
				Bundle: bundle.New(ids...),
				Value:  float64(1 + rng.Intn(10)),
			}
		}
		capacity := bundle.Size(3 + rng.Intn(20))
		return cands, capacity, func(f bundle.FileID) bundle.Size { return sizes[f] }
	}
	check := func() bool {
		cands, capacity, sizeOf := instance()
		opt := SolveExact(cands, capacity, sizeOf)
		if opt.Value == 0 {
			return true
		}
		d := MaxDegree(cands)
		if d < 1 {
			d = 1
		}
		deg := make(map[bundle.FileID]int)
		for _, c := range cands {
			for _, f := range c.Bundle {
				deg[f]++
			}
		}
		opts := core.SelectOptions{
			SizeOf:   sizeOf,
			DegreeOf: func(f bundle.FileID) int { return deg[f] },
		}
		halfBound := 0.5 * (1 - math.Exp(-1/float64(d))) * opt.Value
		fullBound := (1 - math.Exp(-1/float64(d))) * opt.Value
		const eps = 1e-9

		for _, resort := range []bool{false, true} {
			opts.Resort = resort
			g := core.Select(cands, capacity, opts)
			if g.Value+eps < halfBound {
				t.Logf("resort=%v greedy %v < half bound %v (OPT %v, d %d)",
					resort, g.Value, halfBound, opt.Value, d)
				return false
			}
			if g.Value > opt.Value+eps {
				t.Logf("greedy %v exceeds OPT %v — solver bug", g.Value, opt.Value)
				return false
			}
		}
		opts.Resort = true
		s := core.SelectSeeded(cands, capacity, 2, opts)
		if s.Value+eps < fullBound {
			t.Logf("seeded %v < full bound %v (OPT %v, d %d)", s.Value, fullBound, opt.Value, d)
			return false
		}
		if s.Value > opt.Value+eps {
			t.Logf("seeded %v exceeds OPT %v", s.Value, opt.Value)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if err := quick.Check(func() bool { return check() }, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveExact12(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	cands := make([]core.Candidate, 12)
	for i := range cands {
		ids := make([]bundle.FileID, 1+rng.Intn(3))
		for j := range ids {
			ids[j] = bundle.FileID(rng.Intn(10))
		}
		cands[i] = core.Candidate{Bundle: bundle.New(ids...), Value: float64(1 + rng.Intn(9))}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SolveExact(cands, 8, unit)
	}
}
