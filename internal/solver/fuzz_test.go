package solver_test

// Differential fuzzing of Theorem 4.1: on every decodable small instance the
// OptCacheSelect greedy must achieve at least ½(1 − e^{−1/d}) of the exact
// branch-and-bound optimum, and the k=2 seeded variant at least (1 − e^{−1/d}).
// The experiment suite (internal/experiment.BoundStudy) samples the same
// property over a fixed random distribution; the fuzzer lets coverage-guided
// mutation look for adversarial instances instead.

import (
	"math"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/solver"
)

// decodeBoundInstance builds a small FBC instance from fuzz bytes, bounded
// well under solver.MaxExactRequests so SolveExact stays fast. ok is false
// when the input is too short.
func decodeBoundInstance(data []byte) (cands []core.Candidate, capacity bundle.Size, sizeOf bundle.SizeFunc, ok bool) {
	pos := 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}

	hdr, okh := next()
	if !okh {
		return nil, 0, nil, false
	}
	nFiles := 1 + int(hdr%8)

	sizes := make([]bundle.Size, nFiles)
	for i := range sizes {
		v, okv := next()
		if !okv {
			return nil, 0, nil, false
		}
		sizes[i] = bundle.Size(1 + v%6)
	}

	nb, okn := next()
	if !okn {
		return nil, 0, nil, false
	}
	n := 1 + int(nb%10)
	cands = make([]core.Candidate, 0, n)
	for i := 0; i < n; i++ {
		kb, okk := next()
		if !okk {
			return nil, 0, nil, false
		}
		k := 1 + int(kb%3)
		ids := make([]bundle.FileID, k)
		for j := range ids {
			id, oki := next()
			if !oki {
				return nil, 0, nil, false
			}
			ids[j] = bundle.FileID(int(id) % nFiles)
		}
		vb, okv := next()
		if !okv {
			return nil, 0, nil, false
		}
		cands = append(cands, core.Candidate{Bundle: bundle.New(ids...), Value: float64(1 + vb%10)})
	}

	cb, okc := next()
	if !okc {
		return nil, 0, nil, false
	}
	capacity = bundle.Size(1 + cb%24)
	return cands, capacity, func(f bundle.FileID) bundle.Size { return sizes[f] }, true
}

// FuzzSelectHalfBound is the machine-checked form of Theorem 4.1.
func FuzzSelectHalfBound(f *testing.F) {
	f.Add([]byte("0123456789abcdefghij"))
	f.Add([]byte("\x03\x01\x02\x04\x04\x02\x00\x05\x01\x01\x07\x02\x00\x01\x03\x10"))
	f.Add([]byte("paper-instance-seed-bytes-000000"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cands, capacity, sizeOf, ok := decodeBoundInstance(data)
		if !ok {
			t.Skip("input too short to decode")
		}
		opt := solver.SolveExact(cands, capacity, sizeOf)
		if opt.Value <= 0 {
			return // nothing fits; the bound is vacuous
		}

		deg := make(map[bundle.FileID]int)
		for _, c := range cands {
			for _, f := range c.Bundle {
				deg[f]++
			}
		}
		opts := core.SelectOptions{
			SizeOf:   sizeOf,
			DegreeOf: func(f bundle.FileID) int { return deg[f] },
			Resort:   true,
		}
		d := solver.MaxDegree(cands)
		if d < 1 {
			d = 1
		}
		const eps = 1e-9

		half := 0.5 * (1 - math.Exp(-1/float64(d)))
		if got := core.Select(cands, capacity, opts); got.Value < half*opt.Value-eps {
			t.Fatalf("greedy value %.6f below Theorem 4.1 bound %.6f (d=%d, OPT=%.6f)\ncands=%+v cap=%d",
				got.Value, half*opt.Value, d, opt.Value, cands, capacity)
		}

		if len(cands) <= 8 {
			full := 1 - math.Exp(-1/float64(d))
			if got := core.SelectSeeded(cands, capacity, 2, opts); got.Value < full*opt.Value-eps {
				t.Fatalf("seeded-k2 value %.6f below bound %.6f (d=%d, OPT=%.6f)\ncands=%+v cap=%d",
					got.Value, full*opt.Value, d, opt.Value, cands, capacity)
			}
		}
	})
}
