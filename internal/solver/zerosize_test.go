package solver_test

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/solver"
)

// SolveExact must handle zero-size files without the old Value*1e18 density
// hack misordering the search: zero-size positive-value bundles are
// infinitely dense and always belong to the optimum.
func TestSolveExactZeroSizeFiles(t *testing.T) {
	sizes := map[bundle.FileID]bundle.Size{1: 0, 2: 0, 3: 5, 4: 7}
	sizeOf := func(f bundle.FileID) bundle.Size { return sizes[f] }

	cases := []struct {
		name      string
		cands     []core.Candidate
		capacity  bundle.Size
		wantValue float64
	}{
		{
			name:      "zero-size fits zero capacity",
			cands:     []core.Candidate{{Bundle: bundle.New(1), Value: 3}},
			capacity:  0,
			wantValue: 3,
		},
		{
			name: "zero-size always joins the optimum",
			cands: []core.Candidate{
				{Bundle: bundle.New(1, 2), Value: 2},
				{Bundle: bundle.New(3), Value: 9},
				{Bundle: bundle.New(4), Value: 8},
			},
			capacity:  5,
			wantValue: 11, // zero-size pair + file 3; file 4 does not fit
		},
		{
			name: "worthless zero-size does not pollute the answer",
			cands: []core.Candidate{
				{Bundle: bundle.New(1), Value: 0},
				{Bundle: bundle.New(3), Value: 4},
			},
			capacity:  5,
			wantValue: 4,
		},
		{
			name: "mixed bundle charged only sized files",
			cands: []core.Candidate{
				{Bundle: bundle.New(2, 3), Value: 6},
				{Bundle: bundle.New(4), Value: 5},
			},
			capacity:  7,
			wantValue: 6,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := solver.SolveExact(tc.cands, tc.capacity, sizeOf)
			if got.Value != tc.wantValue {
				t.Fatalf("SolveExact value = %g, want %g (chosen %v)", got.Value, tc.wantValue, got.Chosen)
			}
		})
	}
}
