package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), hand-rolled so the layer stays dependency-free.
// Metrics sharing a family (same name before the label block) emit one
// HELP/TYPE header; histograms expand to _bucket/_sum/_count series with
// cumulative le labels.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range s.Metrics {
		family, labels := splitName(m.Name)
		if family != lastFamily {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(m.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, m.Kind); err != nil {
				return err
			}
			lastFamily = family
		}
		if m.Kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", family, labels, formatFloat(m.Value)); err != nil {
				return err
			}
			continue
		}
		for _, b := range m.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				family, withLabel(labels, "le", formatFloat(b.UpperBound)), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, labels, formatFloat(m.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, m.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects: shortest exact
// decimal, with infinities spelled +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel merges one extra label into an existing (possibly empty) label
// block: withLabel(`{a="b"}`, "le", "5") → `{a="b",le="5"}`.
func withLabel(block, key, value string) string {
	pair := key + `="` + value + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

// escapeHelp flattens newlines and backslashes per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
