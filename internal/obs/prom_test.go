package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func exampleRegistry() *Registry {
	r := NewRegistry()
	r.NewCounter("fb_jobs_total", "Jobs admitted.").Add(12)
	r.NewGauge("fb_used_bytes", "Bytes resident.").Set(1.5e9)
	h := r.NewHistogram("fb_wait_seconds", "Queue wait.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	r.NewGauge(`fb_info{policy="opt"}`, "Build info.").Set(1)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := exampleRegistry().Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP fb_info Build info.
# TYPE fb_info gauge
fb_info{policy="opt"} 1
# HELP fb_jobs_total Jobs admitted.
# TYPE fb_jobs_total counter
fb_jobs_total 12
# HELP fb_used_bytes Bytes resident.
# TYPE fb_used_bytes gauge
fb_used_bytes 1.5e+09
# HELP fb_wait_seconds Queue wait.
# TYPE fb_wait_seconds histogram
fb_wait_seconds_bucket{le="0.1"} 1
fb_wait_seconds_bucket{le="1"} 2
fb_wait_seconds_bucket{le="+Inf"} 3
fb_wait_seconds_sum 30.55
fb_wait_seconds_count 3
`
	if got != want {
		t.Fatalf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWithLabel(t *testing.T) {
	if got := withLabel("", "le", "5"); got != `{le="5"}` {
		t.Errorf("empty block: %q", got)
	}
	if got := withLabel(`{a="b"}`, "le", "+Inf"); got != `{a="b",le="+Inf"}` {
		t.Errorf("merge: %q", got)
	}
}

func TestPromHandler(t *testing.T) {
	srv := httptest.NewServer(PromHandler(exampleRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "fb_jobs_total 12") {
		t.Errorf("body missing counter:\n%s", body)
	}
}

func TestVarsHandler(t *testing.T) {
	srv := httptest.NewServer(VarsHandler(exampleRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	var vars map[string]Metric
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if m := vars["fb_jobs_total"]; m.Value != 12 {
		t.Errorf("fb_jobs_total = %+v", m)
	}
	if m := vars["fb_wait_seconds"]; m.Count != 3 {
		t.Errorf("fb_wait_seconds = %+v", m)
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	srv := httptest.NewServer(DebugMux(exampleRegistry()))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("%s: read: %v", path, err)
		}
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}
