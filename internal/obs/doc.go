// Package obs is the repository's observability layer: a zero-dependency,
// allocation-conscious metrics registry and a tracing hook interface that
// make the quantities the paper's evaluation (§6) reasons about — hit and
// byte-miss ratios, eviction churn, staging retries, per-request v'(r)
// selection outcomes and Landlord credit decay — inspectable at runtime
// without printf archaeology.
//
// The package has three parts:
//
//   - Registry (registry.go): typed counters, gauges and fixed-bucket
//     histograms with deterministic Snapshot and Delta APIs. Instruments are
//     safe for concurrent use (the SRM service updates them under load);
//     the registry itself never reads the wall clock, so simulation code can
//     record sim-time observations without perturbing determinism.
//   - Tracer (trace.go, sinks.go): a hook interface with one method per
//     typed event — Admit, Load, Evict, SelectRound, CreditDecay, Stage
//     (Start/Retry/Failover/Done phases) and JobServed — emitted by
//     internal/core, internal/policy/landlord, internal/cache and
//     internal/simulate. Emit sites guard with a nil check, so an untraced
//     run pays only an untaken branch; ready-made sinks include a ring
//     buffer, a JSONL writer and an aggregating stats sink.
//   - Exposition (prom.go, http.go): hand-rolled Prometheus text format,
//     an expvar-style JSON view, and a DebugMux bundling /metrics,
//     /debug/vars and net/http/pprof for cmd/srmd's -debug-addr flag.
//
// obs sits below every other internal package (it imports only the standard
// library), so any layer — simulator core, policies, the SRM service, the
// experiment harness — can publish through it without import cycles. This is
// the seam performance PRs measure through; see the no-op-overhead
// benchmarks in internal/core and internal/policy/landlord.
package obs
