package obs

import (
	"reflect"
	"testing"
)

// TestDeltaCounterReset pins the reset rule: a counter that went backwards
// between the two snapshots (restarted component, or a prev snapshot from an
// unrelated registry with the same names) yields its raw post-reset value,
// never a negative delta.
func TestDeltaCounterReset(t *testing.T) {
	old := NewRegistry()
	old.NewCounter("jobs_total", "").Add(100)
	prev := old.Snapshot()

	fresh := NewRegistry()
	fresh.NewCounter("jobs_total", "").Add(3)
	d := fresh.Snapshot().Delta(prev)

	m, ok := d.Get("jobs_total")
	if !ok {
		t.Fatal("jobs_total missing from delta")
	}
	if m.Value != 3 {
		t.Errorf("delta after reset = %g, want raw value 3 (not -97)", m.Value)
	}
}

func TestDeltaHistogramReset(t *testing.T) {
	bounds := []float64{1, 2}
	old := NewRegistry()
	oh := old.NewHistogram("lat", "", bounds)
	for i := 0; i < 10; i++ {
		oh.Observe(1)
	}
	prev := old.Snapshot()

	fresh := NewRegistry()
	fh := fresh.NewHistogram("lat", "", bounds)
	fh.Observe(2)
	d := fresh.Snapshot().Delta(prev)

	m, ok := d.Get("lat")
	if !ok {
		t.Fatal("lat missing from delta")
	}
	if m.Count != 1 || m.Sum != 2 {
		t.Errorf("delta after reset: count=%d sum=%g, want raw 1/2", m.Count, m.Sum)
	}
	for _, b := range m.Buckets {
		if b.Count < 0 {
			t.Errorf("bucket le=%g count=%d went negative after reset", b.UpperBound, b.Count)
		}
	}
}

// TestDeltaNormalStillSubtracts guards against the reset rule swallowing
// ordinary monotone growth.
func TestDeltaNormalStillSubtracts(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("ticks", "")
	c.Add(5)
	prev := reg.Snapshot()
	c.Add(7)
	m, _ := reg.Snapshot().Delta(prev).Get("ticks")
	if m.Value != 7 {
		t.Errorf("delta = %g, want 7", m.Value)
	}
}

// ringEvents pushes n LoadEvents (file = push ordinal) into a fresh ring of
// the given capacity and returns it.
func ringEvents(capacity, n int) *RingSink {
	r := NewRingSink(capacity)
	for i := 0; i < n; i++ {
		r.Load(LoadEvent{File: int64(i)})
	}
	return r
}

func ringFiles(events []any) []int64 {
	out := make([]int64, len(events))
	for i, ev := range events {
		out[i] = ev.(LoadEvent).File
	}
	return out
}

// TestRingWrapBoundary pins the ring at the three interesting fills: one
// short of capacity, exactly at capacity (next has wrapped to 0 but nothing
// is lost yet), and one past capacity (the oldest event is overwritten).
func TestRingWrapBoundary(t *testing.T) {
	cases := []struct {
		n       int
		want    []int64
		dropped int64
	}{
		{n: 3, want: []int64{0, 1, 2}, dropped: 0},
		{n: 4, want: []int64{0, 1, 2, 3}, dropped: 0},
		{n: 5, want: []int64{1, 2, 3, 4}, dropped: 1},
		{n: 9, want: []int64{5, 6, 7, 8}, dropped: 5},
	}
	for _, tc := range cases {
		r := ringEvents(4, tc.n)
		if got := ringFiles(r.Events()); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("n=%d: Events() = %v, want %v", tc.n, got, tc.want)
		}
		if got := r.Total(); got != int64(tc.n) {
			t.Errorf("n=%d: Total() = %d, want %d", tc.n, got, tc.n)
		}
		if got := r.Dropped(); got != tc.dropped {
			t.Errorf("n=%d: Dropped() = %d, want %d", tc.n, got, tc.dropped)
		}
	}
}

// TestRingDrain pins Drain's contract: emission order out, ring empties,
// Total/Dropped survive, and post-drain pushes start a fresh window with no
// phantom drops from the drained slots.
func TestRingDrain(t *testing.T) {
	r := ringEvents(4, 6) // events 2..5 buffered, 0 and 1 overwritten

	got := ringFiles(r.Drain())
	if want := []int64{2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Drain() = %v, want %v", got, want)
	}
	if ev := r.Events(); len(ev) != 0 {
		t.Fatalf("ring holds %d events after Drain, want 0", len(ev))
	}
	if r.Total() != 6 || r.Dropped() != 2 {
		t.Fatalf("after Drain: Total=%d Dropped=%d, want 6/2", r.Total(), r.Dropped())
	}

	// Refill past the wrap: drained slots must not count as drops.
	for i := 6; i < 10; i++ {
		r.Load(LoadEvent{File: int64(i)})
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d after refilling drained slots, want still 2", r.Dropped())
	}
	if got := ringFiles(r.Drain()); !reflect.DeepEqual(got, []int64{6, 7, 8, 9}) {
		t.Fatalf("second Drain = %v, want [6 7 8 9]", got)
	}
	// One more push after a wrapped-then-drained cycle.
	r.Load(LoadEvent{File: 10})
	if got := ringFiles(r.Events()); !reflect.DeepEqual(got, []int64{10}) {
		t.Fatalf("Events after drain+push = %v, want [10]", got)
	}
}
