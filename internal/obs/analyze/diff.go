package analyze

import (
	"bytes"
	"reflect"
	"sort"

	"fbcache/internal/obs"
	"fbcache/internal/obs/traceio"
)

// KindCount is one event kind's cardinality on each side of a diff.
type KindCount struct {
	Kind string
	A, B int
}

// StatDelta is one TraceStats field on each side of a diff.
type StatDelta struct {
	Name string
	A, B int64
}

// DiffResult compares two traces event-by-event and metric-by-metric.
type DiffResult struct {
	LenA, LenB int

	// FirstDiverge is the index of the first event where the traces differ
	// (including one trace ending early); -1 when the event streams are
	// identical. DivergeA/DivergeB hold the JSONL rendering of the
	// diverging events, "" for the side that already ended.
	FirstDiverge     int
	DivergeA, DivergeB string

	// Kinds lists per-kind event counts for both sides (sorted by kind,
	// only kinds present in either trace); StatDeltas lists the TraceStats
	// fields that differ.
	Kinds      []KindCount
	StatDeltas []StatDelta

	StatsA, StatsB obs.TraceStats
}

// Identical reports byte-equivalent traces: same events in the same order.
func (d DiffResult) Identical() bool { return d.FirstDiverge < 0 }

// renderEvent produces the single JSONL line for e (without the newline).
func renderEvent(e traceio.Event) string {
	var buf bytes.Buffer
	if err := traceio.Write(&buf, []traceio.Event{e}); err != nil {
		return "<unrenderable: " + err.Error() + ">"
	}
	return string(bytes.TrimRight(buf.Bytes(), "\n"))
}

// Diff compares two decoded traces. Two same-seed, same-policy runs must
// come back Identical; runs differing only in policy diverge at the first
// replacement decision, and the kind counts and stat deltas quantify how
// differently the two policies behaved (eviction churn, retry volume,
// bytes moved).
func Diff(a, b []traceio.Event) DiffResult {
	d := DiffResult{LenA: len(a), LenB: len(b), FirstDiverge: -1}

	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a[i], b[i]) {
			d.FirstDiverge = i
			d.DivergeA = renderEvent(a[i])
			d.DivergeB = renderEvent(b[i])
			break
		}
	}
	if d.FirstDiverge < 0 && len(a) != len(b) {
		d.FirstDiverge = n
		if n < len(a) {
			d.DivergeA = renderEvent(a[n])
		}
		if n < len(b) {
			d.DivergeB = renderEvent(b[n])
		}
	}

	counts := make(map[string]*KindCount)
	tally := func(events []traceio.Event, side int) {
		for _, e := range events {
			c := counts[e.Kind]
			if c == nil {
				c = &KindCount{Kind: e.Kind}
				counts[e.Kind] = c
			}
			if side == 0 {
				c.A++
			} else {
				c.B++
			}
		}
	}
	tally(a, 0)
	tally(b, 1)
	for _, c := range counts {
		d.Kinds = append(d.Kinds, *c)
	}
	sort.Slice(d.Kinds, func(i, j int) bool { return d.Kinds[i].Kind < d.Kinds[j].Kind })

	d.StatsA = Stats(a)
	d.StatsB = Stats(b)
	d.StatDeltas = statDeltas(d.StatsA, d.StatsB)
	return d
}

// statDeltas lists the TraceStats fields whose values differ, by field
// name, via reflection so new counters are picked up automatically.
func statDeltas(a, b obs.TraceStats) []StatDelta {
	var out []StatDelta
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		fa, fb := va.Field(i).Int(), vb.Field(i).Int()
		if fa != fb {
			out = append(out, StatDelta{Name: t.Field(i).Name, A: fa, B: fb})
		}
	}
	return out
}
