package analyze

import (
	"math"
	"testing"

	"fbcache/internal/obs"
	"fbcache/internal/obs/traceio"
)

// spanEvent wraps a SpanEvent into a trace event the way traceio decodes it.
func spanEvent(e obs.SpanEvent) traceio.Event {
	return traceio.Event{Kind: traceio.KindSpan, Ev: e}
}

// spanFixture is a two-request flight dump: request 1 is a fast stage with
// an admit child, request 2 is a slow busy stage with a wait child. A
// non-span event is interleaved to prove filtering.
func spanFixture() []traceio.Event {
	return []traceio.Event{
		spanEvent(obs.SpanEvent{At: 1.05, Req: 1, Span: 2, Parent: 1, Op: "stage.admit", DurSec: 0.03, Bytes: 100, Files: 2}),
		{Kind: traceio.KindLoad, Ev: obs.LoadEvent{File: 7, Bytes: 100}},
		spanEvent(obs.SpanEvent{At: 1.10, Req: 1, Span: 1, Op: "stage", DurSec: 0.10, Bytes: 100, Files: 2}),
		spanEvent(obs.SpanEvent{At: 2.45, Req: 2, Span: 4, Parent: 3, Op: "stage.wait", DurSec: 0.40, Err: "busy"}),
		spanEvent(obs.SpanEvent{At: 2.50, Req: 2, Span: 3, Op: "stage", DurSec: 0.50, Err: "busy"}),
	}
}

func TestSpansReport(t *testing.T) {
	rep := Spans(spanFixture(), 10)
	if rep.Spans != 4 || rep.Requests != 2 {
		t.Fatalf("spans/requests = %d/%d, want 4/2", rep.Spans, rep.Requests)
	}

	ops := map[string]OpLatency{}
	for _, o := range rep.Ops {
		ops[o.Op] = o
	}
	st, ok := ops["stage"]
	if !ok {
		t.Fatal("no stage row")
	}
	if st.Count != 2 || st.Errors != 1 {
		t.Errorf("stage count/errors = %d/%d, want 2/1", st.Count, st.Errors)
	}
	// Exact quantiles over {0.10, 0.50}: p50 interpolates to the midpoint,
	// max is the busy request.
	if math.Abs(st.P50-0.30) > 1e-9 || st.Max != 0.50 {
		t.Errorf("stage p50/max = %v/%v, want 0.30/0.50", st.P50, st.Max)
	}
	if w := ops["stage.wait"]; w.Count != 1 || w.Errors != 1 || w.P99 != 0.40 {
		t.Errorf("stage.wait row = %+v", w)
	}
	// Rows sort by op name.
	for i := 1; i < len(rep.Ops); i++ {
		if rep.Ops[i-1].Op >= rep.Ops[i].Op {
			t.Errorf("ops out of order: %q before %q", rep.Ops[i-1].Op, rep.Ops[i].Op)
		}
	}

	if len(rep.Slowest) != 2 {
		t.Fatalf("slowest = %d entries, want 2", len(rep.Slowest))
	}
	if s := rep.Slowest[0]; s.Req != 2 || s.DurSec != 0.50 || s.Err != "busy" || s.Spans != 2 {
		t.Errorf("slowest[0] = %+v, want req 2 (0.5s busy, 2 spans)", s)
	}
	if s := rep.Slowest[1]; s.Req != 1 || s.Spans != 2 {
		t.Errorf("slowest[1] = %+v, want req 1 with 2 spans", s)
	}

	// Trees nest the children under their request roots, oldest first.
	if len(rep.Trees) != 2 || rep.Trees[0].Req != 1 || rep.Trees[1].Req != 2 {
		t.Fatalf("trees = %+v", rep.Trees)
	}
	if len(rep.Trees[0].Children) != 1 || rep.Trees[0].Children[0].Op != "stage.admit" {
		t.Errorf("request 1 tree lost its admit child: %+v", rep.Trees[0])
	}
}

func TestSpansTopKAndEmpty(t *testing.T) {
	rep := Spans(spanFixture(), 1)
	if len(rep.Slowest) != 1 || rep.Slowest[0].Req != 2 {
		t.Errorf("top-1 slowest = %+v, want only req 2", rep.Slowest)
	}

	// A trace with no span events yields an empty report, not a panic.
	empty := Spans([]traceio.Event{{Kind: traceio.KindLoad, Ev: obs.LoadEvent{File: 1}}}, 0)
	if empty.Spans != 0 || empty.Requests != 0 || len(empty.Ops) != 0 || len(empty.Slowest) != 0 {
		t.Errorf("empty report = %+v", empty)
	}
}
