package analyze

import (
	"sort"

	"fbcache/internal/obs"
	"fbcache/internal/obs/traceio"
)

// JobPath is one job's critical-path breakdown, reconstructed from its
// JobServed record and the Stage events carrying its job ID. All durations
// are sim-time seconds.
//
// The legs partition the response time: QueueWait (arrival to first slot),
// Transfer (first slot to fully staged — retries, failovers, dark-grid
// waits and requeues all land here, itemized by the counters), Process
// (staged to completion).
type JobPath struct {
	Job          int
	QueuedAt     float64
	FirstStageAt float64
	ServedAt     float64

	Response  float64
	QueueWait float64
	Transfer  float64
	Process   float64

	Retries        int
	Failovers      int
	FailedAttempts int // staging attempts abandoned (StageDone with ok=false)

	// BlockingFiles are the file IDs whose loads this job's admissions
	// triggered — the misses the job actually waited on. Empty when the
	// trace has no cache-level events.
	BlockingFiles []int64
}

// CriticalPath aggregates the per-job breakdowns of one trace.
type CriticalPath struct {
	Jobs int
	// Timed is false for trace-driven runs (simulate.Run), which serve jobs
	// on an ordinal clock: the breakdown degenerates to zeros there.
	Timed bool

	MeanResponse  float64
	MeanQueueWait float64
	MeanTransfer  float64
	MeanProcess   float64

	// Top holds the K slowest jobs by response time, slowest first.
	Top []JobPath
}

// CriticalPaths reconstructs every served job's critical path and returns
// the aggregate plus the topK slowest jobs. Jobs served multiple times
// (requeued after abandoned staging) fold into one path keyed by job ID.
func CriticalPaths(events []traceio.Event, topK int) CriticalPath {
	if topK <= 0 {
		topK = 10
	}
	type jobState struct {
		retries, failovers, failed int
		blocking                   []int64
	}
	state := make(map[int]*jobState)
	stateOf := func(job int) *jobState {
		st := state[job]
		if st == nil {
			st = &jobState{}
			state[job] = st
		}
		return st
	}

	var paths []JobPath
	// Loads emitted since the last admit; the stage_start that follows the
	// admit tells us which job those misses blocked.
	var batch, lastAdmitted []int64

	for _, e := range events {
		switch ev := e.Ev.(type) {
		case obs.LoadEvent:
			batch = append(batch, ev.File)
		case obs.AdmitEvent:
			lastAdmitted, batch = batch, nil
		case obs.StageEvent:
			st := stateOf(ev.Job)
			switch ev.Phase {
			case obs.StageStart:
				st.blocking = append(st.blocking, lastAdmitted...)
				lastAdmitted = nil
			case obs.StageRetry:
				st.retries++
			case obs.StageFailover:
				st.failovers++
			case obs.StageDone:
				if !ev.OK {
					st.failed++
				}
			}
		case obs.JobServedEvent:
			p := JobPath{
				Job:          ev.Job,
				QueuedAt:     ev.QueuedAt,
				FirstStageAt: ev.FirstStageAt,
				ServedAt:     ev.At,
				Response:     ev.ResponseSec,
			}
			if ev.FirstStageAt >= ev.QueuedAt {
				p.QueueWait = ev.FirstStageAt - ev.QueuedAt
			}
			if staging := ev.StagingSec; staging >= p.QueueWait {
				p.Transfer = staging - p.QueueWait
			}
			if ev.ResponseSec >= ev.StagingSec {
				p.Process = ev.ResponseSec - ev.StagingSec
			}
			if st := state[ev.Job]; st != nil {
				p.Retries = st.retries
				p.Failovers = st.failovers
				p.FailedAttempts = st.failed
				p.BlockingFiles = st.blocking
				delete(state, ev.Job)
			}
			paths = append(paths, p)
		}
	}

	cp := CriticalPath{Jobs: len(paths)}
	if len(paths) == 0 {
		return cp
	}
	var sumR, sumQ, sumT, sumP float64
	for _, p := range paths {
		sumR += p.Response
		sumQ += p.QueueWait
		sumT += p.Transfer
		sumP += p.Process
		if p.Response > 0 || p.QueueWait > 0 {
			cp.Timed = true
		}
	}
	n := float64(len(paths))
	cp.MeanResponse = sumR / n
	cp.MeanQueueWait = sumQ / n
	cp.MeanTransfer = sumT / n
	cp.MeanProcess = sumP / n

	// Slowest first; job ID breaks ties so the listing is deterministic.
	sort.SliceStable(paths, func(i, j int) bool {
		if paths[i].Response > paths[j].Response {
			return true
		}
		if paths[i].Response < paths[j].Response {
			return false
		}
		return paths[i].Job < paths[j].Job
	})
	if len(paths) > topK {
		paths = paths[:topK]
	}
	cp.Top = paths
	return cp
}
