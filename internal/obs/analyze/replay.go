package analyze

import (
	"fmt"

	"fbcache/internal/obs"
	"fbcache/internal/obs/traceio"
)

// Violation is one offline invariant failure, anchored to the 0-based event
// index in the trace.
type Violation struct {
	Index int
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("event %d: %s", v.Index, v.Msg)
}

// ReplayResult is the outcome of reconstructing cache residency from a
// trace.
type ReplayResult struct {
	Events        int
	Admits        int
	MaxUsedBytes  int64 // high-water residency over the whole trace
	EndUsedBytes  int64 // bytes resident after the last event
	EndResident   int   // files resident after the last event
	DistinctFiles int   // distinct file IDs ever loaded
	Violations    []Violation
}

// OK reports a clean replay.
func (r ReplayResult) OK() bool { return len(r.Violations) == 0 }

// Replay reconstructs cache residency from Load/Evict events and re-checks
// the internal/invariant properties offline, against the trace instead of
// the live data structures:
//
//   - a resident file is never loaded again without an intervening evict,
//     and only resident files are evicted, at the size they were loaded at;
//   - used bytes never exceed capacity (checked when capacity > 0 — the
//     trace does not carry the cache size, so the caller supplies it);
//   - admissions are all-or-nothing: the loads and evicts emitted since the
//     previous admit must match the admit record's files_loaded /
//     bytes_loaded / files_evicted exactly, and an unserviceable admission
//     must have loaded nothing (paper §4's atomic bundle admission).
//
// A trace that interleaves several caches (e.g. cachesim -compare) is not
// replayable; every tool in this repo traces a single policy instance.
func Replay(events []traceio.Event, capacity int64) ReplayResult {
	res := ReplayResult{Events: len(events)}
	resident := make(map[int64]int64) // file -> bytes
	var used int64
	seen := make(map[int64]bool)

	// Loads/evicts accumulated since the previous admit event; the admit
	// closing the batch must account for them exactly.
	var batchLoads, batchEvicts int
	var batchLoadBytes int64

	fail := func(i int, format string, args ...any) {
		res.Violations = append(res.Violations, Violation{Index: i, Msg: fmt.Sprintf(format, args...)})
	}

	for i, e := range events {
		switch ev := e.Ev.(type) {
		case obs.LoadEvent:
			if _, dup := resident[ev.File]; dup {
				fail(i, "load of already-resident file %d", ev.File)
			}
			resident[ev.File] = ev.Bytes
			seen[ev.File] = true
			used += ev.Bytes
			batchLoads++
			batchLoadBytes += ev.Bytes
			if used > res.MaxUsedBytes {
				res.MaxUsedBytes = used
			}
			if capacity > 0 && used > capacity {
				fail(i, "used %d bytes exceeds capacity %d after load of file %d", used, capacity, ev.File)
			}
		case obs.EvictEvent:
			sz, ok := resident[ev.File]
			if !ok {
				fail(i, "evict of non-resident file %d", ev.File)
				batchEvicts++
				continue
			}
			if sz != ev.Bytes {
				fail(i, "file %d evicted at %d bytes but loaded at %d", ev.File, ev.Bytes, sz)
			}
			delete(resident, ev.File)
			used -= sz
			batchEvicts++
		case obs.AdmitEvent:
			res.Admits++
			if ev.Unserviceable {
				if batchLoads != 0 || batchEvicts != 0 {
					fail(i, "unserviceable admission moved data: %d loads, %d evicts (all-or-nothing violated)",
						batchLoads, batchEvicts)
				}
			} else {
				if batchLoads != ev.FilesLoaded {
					fail(i, "admission claims %d files loaded, trace shows %d", ev.FilesLoaded, batchLoads)
				}
				if batchLoadBytes != ev.BytesLoaded {
					fail(i, "admission claims %d bytes loaded, trace shows %d", ev.BytesLoaded, batchLoadBytes)
				}
				if batchEvicts != ev.FilesEvicted {
					fail(i, "admission claims %d files evicted, trace shows %d", ev.FilesEvicted, batchEvicts)
				}
				if ev.Hit && ev.FilesLoaded != 0 {
					fail(i, "hit admission loaded %d files", ev.FilesLoaded)
				}
			}
			batchLoads, batchEvicts, batchLoadBytes = 0, 0, 0
		}
	}
	// Loads after the final admit belong to no admission; a policy that
	// emits admits only does so at the end of one, so leftovers mean a
	// truncated trace. Cache-only traces (classic policies trace loads and
	// evicts but no admissions) legitimately have no admits at all.
	if res.Admits > 0 && (batchLoads != 0 || batchEvicts != 0) {
		fail(len(events)-1, "trace ends mid-admission: %d loads and %d evicts after the last admit",
			batchLoads, batchEvicts)
	}
	res.EndUsedBytes = used
	res.EndResident = len(resident)
	res.DistinctFiles = len(seen)
	return res
}
