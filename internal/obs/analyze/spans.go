package analyze

import (
	"sort"

	"fbcache/internal/obs"
	"fbcache/internal/obs/span"
	"fbcache/internal/obs/traceio"
	"fbcache/internal/stats"
)

// OpLatency is one operation's latency profile over a span trace, computed
// from the exact per-span durations (not histogram buckets). All times are
// wall-clock seconds.
type OpLatency struct {
	Op     string
	Count  int
	Errors int
	P50    float64
	P90    float64
	P99    float64
	Max    float64
}

// SlowRequest ranks one request tree by its root span's duration.
type SlowRequest struct {
	Req    uint64
	Op     string  // root span operation
	DurSec float64 // root span duration, seconds
	Err    string  // root span error code, "" on success
	Spans  int     // spans in the tree, root included
}

// SpanReport aggregates the span events of one trace.
type SpanReport struct {
	Spans    int
	Requests int           // reconstructed request trees
	Ops      []OpLatency   // sorted by operation name
	Slowest  []SlowRequest // topK slowest roots, slowest first
	Trees    []*span.Node  // every request tree, oldest first
}

// Spans filters the span events out of a trace and aggregates them: per-op
// latency quantiles over the exact durations, the topK slowest requests by
// root-span duration, and the request trees reconstructed by span.Trees.
// Non-span events are ignored, so a flight-recorder dump can interleave
// with cache/simulator events in the same file. A request whose parent
// span lives in another process's recorder surfaces as its own tree (see
// span.Trees), so client- and server-side dumps analyzed separately each
// yield complete listings.
func Spans(events []traceio.Event, topK int) SpanReport {
	if topK <= 0 {
		topK = 10
	}
	var spans []obs.SpanEvent
	for _, e := range events {
		if ev, ok := e.Ev.(obs.SpanEvent); ok {
			spans = append(spans, ev)
		}
	}
	rep := SpanReport{Spans: len(spans)}
	if len(spans) == 0 {
		return rep
	}

	type acc struct {
		durs   []float64
		errors int
	}
	byOp := make(map[string]*acc)
	for _, s := range spans {
		a := byOp[s.Op]
		if a == nil {
			a = &acc{}
			byOp[s.Op] = a
		}
		a.durs = append(a.durs, s.DurSec)
		if s.Err != "" {
			a.errors++
		}
	}
	for op, a := range byOp {
		var max float64
		for _, d := range a.durs {
			if d > max {
				max = d
			}
		}
		rep.Ops = append(rep.Ops, OpLatency{
			Op:     op,
			Count:  len(a.durs),
			Errors: a.errors,
			P50:    stats.Quantile(a.durs, 0.50),
			P90:    stats.Quantile(a.durs, 0.90),
			P99:    stats.Quantile(a.durs, 0.99),
			Max:    max,
		})
	}
	sort.Slice(rep.Ops, func(i, j int) bool { return rep.Ops[i].Op < rep.Ops[j].Op })

	rep.Trees = span.Trees(spans)
	rep.Requests = len(rep.Trees)
	slow := make([]SlowRequest, 0, len(rep.Trees))
	for _, t := range rep.Trees {
		slow = append(slow, SlowRequest{
			Req:    t.Req,
			Op:     t.Op,
			DurSec: t.DurSec,
			Err:    t.Err,
			Spans:  countNodes(t),
		})
	}
	// Slowest first; request ID breaks ties so the listing is deterministic.
	sort.SliceStable(slow, func(i, j int) bool {
		if slow[i].DurSec != slow[j].DurSec { //fbvet:allow floateq — sort comparator needs a total order; tolerant ties are not transitive
			return slow[i].DurSec > slow[j].DurSec
		}
		return slow[i].Req < slow[j].Req
	})
	if len(slow) > topK {
		slow = slow[:topK]
	}
	rep.Slowest = slow
	return rep
}

// countNodes counts a tree's spans, root included.
func countNodes(n *span.Node) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}
