// Package analyze derives the paper's evaluation quantities (§6, Figs 4–9)
// offline from JSONL event traces: a replay validator that reconstructs
// cache residency and re-checks the internal/invariant properties after the
// fact, residency/churn/hit-ratio summaries, per-job critical-path
// breakdowns, trace-vs-trace diffs, and per-op latency profiles over the
// request-span telemetry dumped by the flight recorder. It consumes the
// typed events decoded by internal/obs/traceio and is driven by
// cmd/fbtrace.
//
// Time units: simulator-level events (stage, job_served) carry sim-time
// seconds; policy- and cache-level events carry per-component ordinals that
// are not comparable across kinds. Analytics that need one clock for the
// whole trace therefore count served jobs — "this file stayed resident for
// 12 jobs" is both layer-independent and the natural unit for caching
// questions.
package analyze

import (
	"fbcache/internal/obs"
	"fbcache/internal/obs/traceio"
)

// Stats replays events into an obs.StatsSink and returns the aggregate
// counts — the same totals a live run would have accumulated.
func Stats(events []traceio.Event) obs.TraceStats {
	sink := obs.NewStatsSink()
	for _, e := range events {
		// Dispatch only fails on payload types a decoder cannot produce.
		_ = traceio.Dispatch(sink, e)
	}
	return sink.Stats()
}
