package analyze

import (
	"bytes"
	"math"
	"os"
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/mss"
	"fbcache/internal/obs"
	"fbcache/internal/obs/traceio"
	"fbcache/internal/policy"
	"fbcache/internal/policy/landlord"
	"fbcache/internal/simulate"
	"fbcache/internal/workload"
)

const goldenPath = "../../simulate/testdata/golden_trace.jsonl"

func testMSS() mss.Config {
	return mss.Config{Name: "test", LatencySec: 0.1, BandwidthBps: 200e6, Channels: 4}
}

func goldenEvents(t *testing.T) []traceio.Event {
	t.Helper()
	events, skipped, err := traceio.ReadFile(goldenPath, traceio.Strict)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(events) == 0 {
		t.Fatalf("golden trace: %d events, %d skipped", len(events), skipped)
	}
	return events
}

// generate produces a real trace by running a seeded workload through a
// policy, with the tracer installed at both the policy and simulator level
// — the same wiring cachesim -trace-out uses.
func generate(t testing.TB, policyName string, seed int64, timed bool) []traceio.Event {
	t.Helper()
	w, err := workload.Generate(workload.Spec{
		Seed: seed, CacheSize: 200 * bundle.MB, NumFiles: 60, MinFileSize: bundle.MB,
		MaxFilePct: 0.2, NumRequests: 40, MaxBundleFiles: 4, MaxBundleFrac: 0.5,
		Popularity: workload.Zipf, ZipfS: 1, Jobs: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	var p policy.Policy
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	switch policyName {
	case "optfilebundle":
		opt := core.New(w.Spec.CacheSize, w.Catalog.SizeFunc(), core.Options{})
		opt.SetTracer(sink)
		p = policy.WrapOptFileBundle(opt)
	case "landlord":
		ll := landlord.New(w.Spec.CacheSize, w.Catalog.SizeFunc())
		ll.SetTracer(sink)
		p = ll
	default:
		t.Fatalf("unknown policy %q", policyName)
	}
	if timed {
		_, err = simulate.RunEvents(w, p, simulate.EventOptions{
			ArrivalRate: 5, MSS: testMSS(), Seed: seed, Slots: 3, Tracer: sink,
		})
	} else {
		_, err = simulate.Run(w, p, simulate.Options{Tracer: sink})
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	events, _, err := traceio.ReadAll(bytes.NewReader(buf.Bytes()), traceio.Strict)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestReplayGoldenIsClean(t *testing.T) {
	res := Replay(goldenEvents(t), 7)
	for _, v := range res.Violations {
		t.Errorf("golden trace: %s", v)
	}
	if res.MaxUsedBytes != 7 {
		t.Errorf("MaxUsedBytes = %d, want 7 (the trace fills the cache exactly)", res.MaxUsedBytes)
	}
	if res.Admits != 3 || res.DistinctFiles != 3 {
		t.Errorf("admits/files = %d/%d, want 3/3", res.Admits, res.DistinctFiles)
	}
}

// TestReplayGeneratedTracesClean validates real seeded runs — both
// simulators, both traced policies — against the offline invariants.
func TestReplayGeneratedTracesClean(t *testing.T) {
	for _, pol := range []string{"optfilebundle", "landlord"} {
		for _, timed := range []bool{false, true} {
			events := generate(t, pol, 7, timed)
			res := Replay(events, int64(200*bundle.MB))
			for i, v := range res.Violations {
				if i >= 5 {
					t.Fatalf("%s timed=%v: ... and %d more", pol, timed, len(res.Violations)-5)
				}
				t.Errorf("%s timed=%v: %s", pol, timed, v)
			}
		}
	}
}

func TestReplayCatchesCorruption(t *testing.T) {
	base := goldenEvents(t)
	cases := []struct {
		name   string
		mutate func([]traceio.Event) []traceio.Event
		want   string
	}{
		{
			"double load",
			func(ev []traceio.Event) []traceio.Event {
				// Golden event 0 is the load of file 0; replay it again
				// before the admit at index 2.
				out := append([]traceio.Event{ev[0]}, ev...)
				return out
			},
			"already-resident",
		},
		{
			"phantom evict",
			func(ev []traceio.Event) []traceio.Event {
				return append([]traceio.Event{{Kind: traceio.KindEvict,
					Ev: obs.EvictEvent{At: 1, File: 99, Bytes: 1}}}, ev...)
			},
			"non-resident",
		},
		{
			"capacity exceeded",
			nil, // handled below via a smaller capacity
			"exceeds capacity",
		},
		{
			"admit bookkeeping mismatch",
			func(ev []traceio.Event) []traceio.Event {
				out := append([]traceio.Event(nil), ev...)
				a := out[2].Ev.(obs.AdmitEvent) // first admit: 2 files, 7 bytes
				a.FilesLoaded++
				out[2] = traceio.Event{Kind: traceio.KindAdmit, Ev: a}
				return out
			},
			"claims",
		},
		{
			"truncated mid-admission",
			func(ev []traceio.Event) []traceio.Event {
				// Keep everything up to the last load but drop the final
				// admit + job_served.
				return ev[:len(ev)-2]
			},
			"mid-admission",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events, capacity := base, int64(7)
			if tc.mutate != nil {
				events = tc.mutate(base)
			} else {
				capacity = 6 // golden run peaks at 7 resident bytes
			}
			res := Replay(events, capacity)
			if res.OK() {
				t.Fatal("corrupted trace replayed clean")
			}
			found := false
			for _, v := range res.Violations {
				if contains(v.Msg, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no violation mentions %q; got %v", tc.want, res.Violations)
			}
		})
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func TestSummarizeGolden(t *testing.T) {
	s := Summarize(goldenEvents(t), SummaryOptions{Window: 2})
	if s.Stats.Admits != 3 || s.Stats.Loads != 4 || s.Stats.Evicts != 2 {
		t.Errorf("stats = %+v, want 3 admits, 4 loads, 2 evicts", s.Stats)
	}
	if len(s.Policies) != 1 || s.Policies[0].Policy != "optfilebundle" {
		t.Fatalf("policies = %+v", s.Policies)
	}
	p := s.Policies[0]
	if p.BytesRequested != 19 || p.BytesLoaded != 13 {
		t.Errorf("policy bytes = %d/%d, want 19/13", p.BytesRequested, p.BytesLoaded)
	}
	if math.Abs(p.ByteMissRatio()-13.0/19.0) > 1e-12 {
		t.Errorf("byte miss ratio = %g", p.ByteMissRatio())
	}
	// f0 is loaded at job 0, evicted at job 1 (residency 1), reloaded at
	// job 2; f2 loaded at job 1, evicted at job 2 (residency 1).
	if s.Residency.Count != 2 {
		t.Errorf("residency observations = %d, want 2", s.Residency.Count)
	}
	if s.Reloads != 1 {
		t.Errorf("reloads = %d, want 1 (f0 comes back)", s.Reloads)
	}
	// Windows: 3 jobs at window 2 -> points at jobs 2 and 3, all misses.
	if len(s.Windows) != 2 || s.Windows[0].Jobs != 2 || s.Windows[1].Jobs != 3 {
		t.Fatalf("windows = %+v", s.Windows)
	}
	if s.Windows[0].HitRatio != 0 {
		t.Errorf("window hit ratio = %g, want 0 (all cold misses)", s.Windows[0].HitRatio)
	}
}

func TestSummarizeWindowedHitRatio(t *testing.T) {
	// Hand-built: 4 jobs, hits at jobs 2 and 4, window 2.
	var events []traceio.Event
	for i := 0; i < 4; i++ {
		events = append(events, traceio.Event{Kind: traceio.KindJobServed,
			Ev: obs.JobServedEvent{At: float64(i + 1), Job: i, Hit: i%2 == 1,
				BytesRequested: 100, BytesLoaded: int64(50 * (1 - i%2))}})
	}
	s := Summarize(events, SummaryOptions{Window: 2})
	if len(s.Windows) != 2 {
		t.Fatalf("windows = %+v", s.Windows)
	}
	for i, w := range s.Windows {
		if math.Abs(w.HitRatio-0.5) > 1e-12 {
			t.Errorf("window %d hit ratio = %g, want 0.5", i, w.HitRatio)
		}
		if math.Abs(w.ByteHitRatio-0.75) > 1e-12 {
			t.Errorf("window %d byte hit ratio = %g, want 0.75", i, w.ByteHitRatio)
		}
	}
}

func TestCriticalPathsTimed(t *testing.T) {
	events := generate(t, "optfilebundle", 11, true)
	cp := CriticalPaths(events, 5)
	if !cp.Timed {
		t.Fatal("timed trace classified as untimed")
	}
	if cp.Jobs == 0 || len(cp.Top) == 0 || len(cp.Top) > 5 {
		t.Fatalf("jobs=%d top=%d", cp.Jobs, len(cp.Top))
	}
	for i := 1; i < len(cp.Top); i++ {
		if cp.Top[i].Response > cp.Top[i-1].Response {
			t.Fatal("top jobs not sorted slowest-first")
		}
	}
	if cp.Top[0].Response < cp.MeanResponse {
		t.Error("slowest job responds faster than the mean")
	}
	// The legs must partition each job's response time.
	for _, p := range cp.Top {
		if sum := p.QueueWait + p.Transfer + p.Process; math.Abs(sum-p.Response) > 1e-6 {
			t.Errorf("job %d: legs sum to %g, response %g", p.Job, sum, p.Response)
		}
	}
	// With cache-level events installed, slow jobs name their misses.
	blocking := 0
	for _, p := range cp.Top {
		blocking += len(p.BlockingFiles)
	}
	if blocking == 0 {
		t.Error("no top job lists blocking files despite cache-level tracing")
	}
}

func TestCriticalPathsUntimed(t *testing.T) {
	cp := CriticalPaths(goldenEvents(t), 3)
	if cp.Timed {
		t.Error("ordinal-clock trace classified as timed")
	}
	if cp.Jobs != 3 {
		t.Errorf("jobs = %d, want 3", cp.Jobs)
	}
}

func TestDiffIdenticalAndDiverging(t *testing.T) {
	a := generate(t, "optfilebundle", 5, false)
	b := generate(t, "optfilebundle", 5, false)
	d := Diff(a, b)
	if !d.Identical() {
		t.Fatalf("same-seed same-policy traces diverge at %d:\nA: %s\nB: %s",
			d.FirstDiverge, d.DivergeA, d.DivergeB)
	}
	if len(d.StatDeltas) != 0 {
		t.Errorf("identical traces have stat deltas: %+v", d.StatDeltas)
	}

	c := generate(t, "landlord", 5, false)
	d = Diff(a, c)
	if d.Identical() {
		t.Fatal("opt vs landlord traces identical")
	}
	if d.FirstDiverge < 0 || d.DivergeA == "" || d.DivergeB == "" {
		t.Errorf("divergence not captured: %+v", d)
	}
	if len(d.Kinds) == 0 {
		t.Error("no kind counts")
	}
}

func TestDiffPrefixTruncation(t *testing.T) {
	a := goldenEvents(t)
	d := Diff(a, a[:len(a)-1])
	if d.Identical() {
		t.Fatal("truncated trace counted identical")
	}
	if d.FirstDiverge != len(a)-1 || d.DivergeA == "" || d.DivergeB != "" {
		t.Errorf("divergence = %d (%q / %q), want %d with only side A rendered",
			d.FirstDiverge, d.DivergeA, d.DivergeB, len(a)-1)
	}
	if len(d.StatDeltas) == 0 {
		t.Error("dropping a job_served event changes no stat")
	}
}

// TestStatsMatchesLiveSink pins Stats (replayed) against a live StatsSink
// fed by the same run.
func TestStatsMatchesLiveSink(t *testing.T) {
	events := generate(t, "landlord", 3, true)
	if got, want := Stats(events), liveStats(t, 3); got != want {
		t.Errorf("replayed stats %+v != live stats %+v", got, want)
	}
}

func liveStats(t *testing.T, seed int64) obs.TraceStats {
	t.Helper()
	w, err := workload.Generate(workload.Spec{
		Seed: seed, CacheSize: 200 * bundle.MB, NumFiles: 60, MinFileSize: bundle.MB,
		MaxFilePct: 0.2, NumRequests: 40, MaxBundleFiles: 4, MaxBundleFrac: 0.5,
		Popularity: workload.Zipf, ZipfS: 1, Jobs: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewStatsSink()
	ll := landlord.New(w.Spec.CacheSize, w.Catalog.SizeFunc())
	ll.SetTracer(sink)
	if _, err := simulate.RunEvents(w, ll, simulate.EventOptions{
		ArrivalRate: 5, MSS: testMSS(), Seed: seed, Slots: 3, Tracer: sink,
	}); err != nil {
		t.Fatal(err)
	}
	return sink.Stats()
}

var _ = os.Getenv // keep os imported for future debugging hooks
