package analyze

import (
	"sort"

	"fbcache/internal/obs"
	"fbcache/internal/obs/traceio"
)

// SummaryOptions tunes Summarize.
type SummaryOptions struct {
	// Window is the number of served jobs per hit-ratio curve point
	// (default 100).
	Window int
	// TopChurn bounds the most-evicted-files list (default 5).
	TopChurn int
}

// PolicySummary aggregates the admissions of one policy (a trace normally
// has one, but nothing stops concatenating runs).
type PolicySummary struct {
	Policy         string
	Admits         int
	Hits           int
	Unserviceable  int
	BytesRequested int64
	BytesLoaded    int64
}

// HitRatio is request hits over serviceable admissions.
func (p PolicySummary) HitRatio() float64 {
	if n := p.Admits - p.Unserviceable; n > 0 {
		return float64(p.Hits) / float64(n)
	}
	return 0
}

// ByteMissRatio is bytes loaded over bytes requested — the paper's §1.2
// headline metric, reconstructed from the trace alone.
func (p PolicySummary) ByteMissRatio() float64 {
	if p.BytesRequested > 0 {
		return float64(p.BytesLoaded) / float64(p.BytesRequested)
	}
	return 0
}

// FileChurn is the eviction record of one file.
type FileChurn struct {
	File      int64
	Evictions int
	Reloads   int // loads after the first (each one re-paid the retrieval cost)
}

// WindowPoint is one point of the windowed hit-ratio curves.
type WindowPoint struct {
	Jobs          int // jobs served up to and including this window
	HitRatio      float64
	ByteHitRatio  float64
	BytesLoaded   int64
	BytesRequested int64
}

// Summary is the offline analytics bundle fbtrace renders.
type Summary struct {
	Stats    obs.TraceStats
	Policies []PolicySummary // sorted by name

	// Residency is the distribution of jobs-resident-before-eviction, one
	// observation per evicted file occurrence; InterEviction is the
	// distribution of jobs between consecutive evictions. Both use the
	// fixed-bucket obs histogram; estimate percentiles with
	// Metric.Quantile / P50P90P99.
	Residency     obs.Metric
	InterEviction obs.Metric

	// Churn lists the TopChurn most-evicted files; ChurnedFiles counts
	// files evicted more than once and Reloads the total re-paid loads.
	Churn        []FileChurn
	ChurnedFiles int
	Reloads      int

	// Windows is the hit-ratio curve over served jobs.
	Windows []WindowPoint
}

// residencyBuckets spans 1 job .. ~2M jobs; traces beyond that land in the
// +Inf bucket and clamp.
func residencyBuckets() []float64 { return obs.ExpBuckets(1, 2, 22) }

// Summarize reduces a decoded trace to the Summary fbtrace renders. The
// jobs clock (see the package comment) drives every duration: a load at job
// 10 evicted at job 25 scores a residency of 15 jobs.
func Summarize(events []traceio.Event, opts SummaryOptions) Summary {
	if opts.Window <= 0 {
		opts.Window = 100
	}
	if opts.TopChurn <= 0 {
		opts.TopChurn = 5
	}

	s := Summary{Stats: Stats(events)}

	reg := obs.NewRegistry()
	residency := reg.NewHistogram("residency_jobs",
		"Jobs a file stayed resident before eviction.", residencyBuckets())
	interEvict := reg.NewHistogram("inter_eviction_jobs",
		"Jobs between consecutive evictions.", residencyBuckets())

	policies := make(map[string]*PolicySummary)
	loadedAt := make(map[int64]int)   // file -> jobs clock at load
	everLoaded := make(map[int64]bool)
	churn := make(map[int64]*FileChurn)

	jobs := 0 // the jobs clock: job_served events seen so far
	lastEvictJob := -1
	var win WindowPoint

	flushWindow := func() {
		if win.BytesRequested > 0 {
			win.ByteHitRatio = 1 - float64(win.BytesLoaded)/float64(win.BytesRequested)
		}
		n := jobs - (len(s.Windows) * opts.Window)
		if n > 0 {
			win.HitRatio /= float64(n)
		}
		win.Jobs = jobs
		s.Windows = append(s.Windows, win)
		win = WindowPoint{}
	}

	for _, e := range events {
		switch ev := e.Ev.(type) {
		case obs.AdmitEvent:
			p := policies[ev.Policy]
			if p == nil {
				p = &PolicySummary{Policy: ev.Policy}
				policies[ev.Policy] = p
			}
			p.Admits++
			if ev.Hit {
				p.Hits++
			}
			if ev.Unserviceable {
				p.Unserviceable++
			}
			p.BytesRequested += ev.BytesRequested
			p.BytesLoaded += ev.BytesLoaded
		case obs.LoadEvent:
			loadedAt[ev.File] = jobs
			if everLoaded[ev.File] {
				c := churnOf(churn, ev.File)
				c.Reloads++
				s.Reloads++
			}
			everLoaded[ev.File] = true
		case obs.EvictEvent:
			if at, ok := loadedAt[ev.File]; ok {
				residency.Observe(float64(jobs - at))
				delete(loadedAt, ev.File)
			}
			churnOf(churn, ev.File).Evictions++
			if lastEvictJob >= 0 {
				interEvict.Observe(float64(jobs - lastEvictJob))
			}
			lastEvictJob = jobs
		case obs.JobServedEvent:
			jobs++
			if ev.Hit {
				win.HitRatio++
			}
			win.BytesRequested += ev.BytesRequested
			win.BytesLoaded += ev.BytesLoaded
			if jobs%opts.Window == 0 {
				flushWindow()
			}
		}
	}
	if jobs%opts.Window != 0 {
		flushWindow()
	}

	snap := reg.Snapshot()
	s.Residency, _ = snap.Get("residency_jobs")
	s.InterEviction, _ = snap.Get("inter_eviction_jobs")

	for _, p := range policies {
		s.Policies = append(s.Policies, *p)
	}
	sort.Slice(s.Policies, func(i, j int) bool { return s.Policies[i].Policy < s.Policies[j].Policy })

	for _, c := range churn {
		if c.Evictions > 1 {
			s.ChurnedFiles++
		}
		s.Churn = append(s.Churn, *c)
	}
	// Most-evicted first; file ID breaks ties so the listing is stable.
	sort.Slice(s.Churn, func(i, j int) bool {
		if s.Churn[i].Evictions != s.Churn[j].Evictions {
			return s.Churn[i].Evictions > s.Churn[j].Evictions
		}
		return s.Churn[i].File < s.Churn[j].File
	})
	if len(s.Churn) > opts.TopChurn {
		s.Churn = s.Churn[:opts.TopChurn]
	}
	return s
}

func churnOf(m map[int64]*FileChurn, file int64) *FileChurn {
	c := m[file]
	if c == nil {
		c = &FileChurn{File: file}
		m[file] = c
	}
	return c
}
