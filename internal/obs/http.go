package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// PromHandler serves the registry in Prometheus text exposition format.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// ResponseWriter errors mean the client went away; nothing to do.
		_ = r.Snapshot().WritePrometheus(w)
	})
}

// VarsHandler serves the registry as an expvar-style JSON object keyed by
// metric name. json.Marshal sorts map keys, so the document is deterministic.
func VarsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := r.Snapshot()
		vars := make(map[string]Metric, len(snap.Metrics))
		for _, m := range snap.Metrics {
			vars[m.Name] = m
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(vars)
	})
}

// DebugMux bundles the debug surface served behind srmd's -debug-addr flag:
//
//	/metrics      Prometheus text format
//	/debug/vars   expvar-style JSON
//	/debug/pprof  CPU, heap, goroutine, block, mutex profiles
//
// pprof handlers are mounted explicitly rather than via the net/http/pprof
// side-effect import so they never leak onto http.DefaultServeMux (which the
// main service listener could otherwise expose).
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", PromHandler(r))
	mux.Handle("/debug/vars", VarsHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
