package obs

import "fmt"

// Event time semantics: every event carries an At float64. Simulation layers
// (internal/simulate.RunEvents) stamp sim-time seconds; policy and cache
// layers, which have no clock at all, stamp a monotone per-component ordinal
// (admission count, load count, eviction count). Neither ever reads the wall
// clock, so traces from the same seed are bit-identical.

// StagePhase distinguishes the lifecycle points of one staging operation.
type StagePhase uint8

const (
	// StageStart marks the first transfer attempt for a job's file set.
	StageStart StagePhase = iota
	// StageRetry marks a failed transfer attempt that will be retried.
	StageRetry
	// StageFailover marks a transfer switching to a lower-ranked replica site.
	StageFailover
	// StageDone marks the end of staging, successful or not (see StageEvent.OK).
	StageDone
)

func (p StagePhase) String() string {
	switch p {
	case StageStart:
		return "start"
	case StageRetry:
		return "retry"
	case StageFailover:
		return "failover"
	case StageDone:
		return "done"
	}
	return "unknown"
}

// MarshalJSON renders the phase as its lowercase name so JSONL traces are
// readable and stable across const reordering.
func (p StagePhase) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON parses the lowercase phase names MarshalJSON emits, so
// JSONL traces decode back into typed events (see internal/obs/traceio).
func (p *StagePhase) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"start"`:
		*p = StageStart
	case `"retry"`:
		*p = StageRetry
	case `"failover"`:
		*p = StageFailover
	case `"done"`:
		*p = StageDone
	default:
		return fmt.Errorf("obs: unknown stage phase %s", data)
	}
	return nil
}

// AdmitEvent is emitted once per bundle admission decision by a policy
// (OptFileBundle, Landlord).
type AdmitEvent struct {
	At             float64 `json:"at"`
	Policy         string  `json:"policy"`
	Files          int     `json:"files"`
	BytesRequested int64   `json:"bytes_requested"`
	BytesLoaded    int64   `json:"bytes_loaded"`
	FilesLoaded    int     `json:"files_loaded"`
	FilesEvicted   int     `json:"files_evicted"`
	Hit            bool    `json:"hit"`
	Unserviceable  bool    `json:"unserviceable,omitempty"`
}

// LoadEvent is emitted by the cache when a file becomes resident. File is
// the numeric catalog ID, not the name: emit sites must not allocate (a
// string conversion would, even under NopTracer), and the consumer can join
// IDs against the catalog offline.
type LoadEvent struct {
	At    float64 `json:"at"`
	File  int64   `json:"file"`
	Bytes int64   `json:"bytes"`
}

// EvictEvent is emitted by the cache when a file is removed. File is the
// numeric catalog ID (see LoadEvent).
type EvictEvent struct {
	At    float64 `json:"at"`
	File  int64   `json:"file"`
	Bytes int64   `json:"bytes"`
}

// SelectRoundEvent is emitted by OptFileBundle for each OptCacheSelect
// (paper Alg. 1) run during a miss: the greedy pick of cached bundles to
// retain, maximising Σ v'(r) within the byte budget.
type SelectRoundEvent struct {
	At           float64 `json:"at"`
	Candidates   int     `json:"candidates"`
	Chosen       int     `json:"chosen"`
	Files        int     `json:"files"`
	Value        float64 `json:"value"`
	Budget       int64   `json:"budget"`
	BudgetUsed   int64   `json:"budget_used"`
	SingleWinner bool    `json:"single_winner,omitempty"`
}

// CreditDecayEvent is emitted by Landlord (paper Alg. 3) when it lowers every
// resident file's credit by the minimum per-byte credit to free space.
type CreditDecayEvent struct {
	At    float64 `json:"at"`
	Min   float64 `json:"min"`
	Files int     `json:"files"`
}

// StageEvent is emitted by the event-driven simulator for each phase of a
// staging operation (see StagePhase). Site is the replica site currently
// serving the transfer; OK is meaningful only for StageDone.
type StageEvent struct {
	At    float64    `json:"at"`
	Phase StagePhase `json:"phase"`
	Job   int        `json:"job"`
	Site  string     `json:"site,omitempty"`
	Files int        `json:"files,omitempty"`
	Bytes int64      `json:"bytes,omitempty"`
	OK    bool       `json:"ok,omitempty"`
}

// JobServedEvent is emitted once per completed job request.
type JobServedEvent struct {
	At          float64 `json:"at"`
	Job         int     `json:"job"`
	Hit         bool    `json:"hit"`
	ResponseSec float64 `json:"response_sec,omitempty"`
	StagingSec  float64 `json:"staging_sec,omitempty"`
	// QueuedAt is when the job entered the wait queue (its arrival, in the
	// trace's time unit — sim-time seconds for the event simulator, the job
	// ordinal for the trace-driven one, which has no queueing and stamps
	// QueuedAt == FirstStageAt). Zero in traces from emitters that predate
	// the field or have no queue semantics (e.g. srmbench client records).
	QueuedAt float64 `json:"queued_at,omitempty"`
	// FirstStageAt is when the job first won an execution slot and its
	// bundle went through Admit; FirstStageAt - QueuedAt is the queue-wait
	// leg of the job's critical path (see internal/obs/analyze).
	FirstStageAt   float64 `json:"first_stage_at,omitempty"`
	BytesRequested int64   `json:"bytes_requested"`
	BytesLoaded    int64   `json:"bytes_loaded"`
}

// SpanEvent is the trace form of one completed request span from the
// serving path (see internal/obs/span). Unlike the simulator events above,
// spans measure wall-clock time: At is the span's end, in seconds since the
// recorder's epoch, and DurSec its wall-clock duration. IDs are opaque
// uint64s assigned by the recorder; Parent is zero for request roots.
type SpanEvent struct {
	At     float64 `json:"at"`
	Req    uint64  `json:"req"`
	Span   uint64  `json:"span"`
	Parent uint64  `json:"parent,omitempty"`
	Op     string  `json:"op"`
	DurSec float64 `json:"dur_sec"`
	Bytes  int64   `json:"bytes,omitempty"`
	Files  int     `json:"files,omitempty"`
	Hit    bool    `json:"hit,omitempty"`
	// Err is the span's error class ("busy", "too_large", ...) or empty on
	// success (see span.ErrCode).
	Err string `json:"err,omitempty"`
}

// ReplicaPlanEvent is emitted by the event-driven simulator once per
// replication epoch: the adaptive planner re-ran against the current replica
// catalog and fault state (see internal/replicate.Planner.Replan). Counts
// summarize the epoch; per-action detail stays in the simulator's stats so
// the trace line has bounded size.
type ReplicaPlanEvent struct {
	At float64 `json:"at"`
	// Epoch is the 1-based re-plan ordinal within the run.
	Epoch int `json:"epoch"`
	// Actions is how many replications the epoch committed, of which
	// Emergency were planned to outrun a scheduled outage.
	Actions   int   `json:"actions"`
	Emergency int   `json:"emergency,omitempty"`
	Bytes     int64 `json:"bytes"`
	// Retired is how many cold planner-installed replicas were removed to
	// reclaim budget.
	Retired      int   `json:"retired,omitempty"`
	RetiredBytes int64 `json:"retired_bytes,omitempty"`
	// Unreachable is how many hot files had no live source this epoch.
	Unreachable int `json:"unreachable,omitempty"`
}

// Tracer receives typed events from the simulator core, the policies, the
// cache and the event engine. Implementations must be cheap: hot loops call
// these methods synchronously. Emit sites hold a concrete tracer behind a nil
// check — a nil tracer costs one untaken branch (see the no-op benchmarks in
// internal/core and internal/policy/landlord).
type Tracer interface {
	Admit(e AdmitEvent)
	Load(e LoadEvent)
	Evict(e EvictEvent)
	SelectRound(e SelectRoundEvent)
	CreditDecay(e CreditDecayEvent)
	Stage(e StageEvent)
	JobServed(e JobServedEvent)
	ReplicaPlan(e ReplicaPlanEvent)
	Span(e SpanEvent)
}

// NopTracer discards every event. Useful as an explicit stand-in where a
// Tracer value is required; passing nil to SetTracer is equally valid and
// marginally cheaper (branch not taken vs. empty dynamic dispatch).
type NopTracer struct{}

// Admit implements Tracer.
func (NopTracer) Admit(AdmitEvent) {}

// Load implements Tracer.
func (NopTracer) Load(LoadEvent) {}

// Evict implements Tracer.
func (NopTracer) Evict(EvictEvent) {}

// SelectRound implements Tracer.
func (NopTracer) SelectRound(SelectRoundEvent) {}

// CreditDecay implements Tracer.
func (NopTracer) CreditDecay(CreditDecayEvent) {}

// Stage implements Tracer.
func (NopTracer) Stage(StageEvent) {}

// JobServed implements Tracer.
func (NopTracer) JobServed(JobServedEvent) {}

// ReplicaPlan implements Tracer.
func (NopTracer) ReplicaPlan(ReplicaPlanEvent) {}

// Span implements Tracer.
func (NopTracer) Span(SpanEvent) {}
