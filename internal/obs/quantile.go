package obs

import (
	"math"
	"sort"
)

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram metric from
// its cumulative fixed buckets, the same way Prometheus's
// histogram_quantile does: find the bucket containing the target rank and
// interpolate linearly inside it, taking 0 as the lower edge of the first
// bucket (every layout in this repo observes non-negative values). A rank
// that lands in the implicit +Inf bucket is clamped to the highest finite
// bound — fixed buckets cannot resolve beyond it. Returns NaN when m is not
// a histogram, has no observations, or q is NaN.
//
// The estimate is exact whenever the observed values coincide with bucket
// bounds (see the table-driven tests); otherwise it is accurate to within
// the containing bucket's width.
func (m Metric) Quantile(q float64) float64 {
	if m.Kind != KindHistogram || len(m.Buckets) == 0 || m.Count <= 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(m.Count)
	i := sort.Search(len(m.Buckets), func(i int) bool {
		return float64(m.Buckets[i].Count) >= rank
	})
	if i == len(m.Buckets) {
		i-- // counts are cumulative, so only reachable via float fuzz at q≈1
	}
	if math.IsInf(m.Buckets[i].UpperBound, 1) {
		// The +Inf bucket: everything we know is "above the last bound".
		if i == 0 {
			return math.NaN()
		}
		return m.Buckets[i-1].UpperBound
	}
	lower, before := 0.0, int64(0)
	if i > 0 {
		lower = m.Buckets[i-1].UpperBound
		before = m.Buckets[i-1].Count
	}
	in := float64(m.Buckets[i].Count - before)
	if in <= 0 {
		return m.Buckets[i].UpperBound
	}
	return lower + (m.Buckets[i].UpperBound-lower)*(rank-float64(before))/in
}

// P50P90P99 returns the three headline quantiles of a histogram metric in
// one call — the summary line fbtrace prints and srm.NewRegistry exposes.
func (m Metric) P50P90P99() (p50, p90, p99 float64) {
	return m.Quantile(0.50), m.Quantile(0.90), m.Quantile(0.99)
}

// Quantile estimates the q-quantile of the live histogram from its current
// bucket counts (see Metric.Quantile for the estimator). It snapshots the
// counts internally, so it is safe to call while observations continue.
func (h *Histogram) Quantile(q float64) float64 {
	m := Metric{Kind: KindHistogram}
	m.Buckets = make([]Bucket, len(h.bounds)+1)
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		m.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
	}
	// Concurrent Observe calls can land between the Count() read and the
	// bucket loads; trust the buckets, they are what we interpolate over.
	m.Count = m.Buckets[len(m.Buckets)-1].Count
	return m.Quantile(q)
}
