package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// jsonlRecord wraps an event with a kind discriminator. encoding/json emits
// struct fields in declaration order, so each line starts with {"kind":...}
// and the record layout is deterministic — golden-testable.
type jsonlRecord struct {
	Kind string `json:"kind"`
	Ev   any    `json:"ev"`
}

// JSONLSink writes one JSON object per event, newline-delimited. Safe for
// concurrent use; write errors are sticky and reported by Err so hot paths
// never have to check.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder //fbvet:guardedby mu
	err error         //fbvet:guardedby mu
}

// NewJSONLSink wraps w. The caller owns w's lifecycle (flush/close).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

func (s *JSONLSink) emit(kind string, ev any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(jsonlRecord{Kind: kind, Ev: ev})
}

// Err reports the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Admit implements Tracer.
func (s *JSONLSink) Admit(e AdmitEvent) { s.emit("admit", e) }

// Load implements Tracer.
func (s *JSONLSink) Load(e LoadEvent) { s.emit("load", e) }

// Evict implements Tracer.
func (s *JSONLSink) Evict(e EvictEvent) { s.emit("evict", e) }

// SelectRound implements Tracer.
func (s *JSONLSink) SelectRound(e SelectRoundEvent) { s.emit("select_round", e) }

// CreditDecay implements Tracer.
func (s *JSONLSink) CreditDecay(e CreditDecayEvent) { s.emit("credit_decay", e) }

// Stage implements Tracer.
func (s *JSONLSink) Stage(e StageEvent) { s.emit("stage", e) }

// JobServed implements Tracer.
func (s *JSONLSink) JobServed(e JobServedEvent) { s.emit("job_served", e) }

// ReplicaPlan implements Tracer.
func (s *JSONLSink) ReplicaPlan(e ReplicaPlanEvent) { s.emit("replica_plan", e) }

// Span implements Tracer.
func (s *JSONLSink) Span(e SpanEvent) { s.emit("span", e) }

// RingSink keeps the most recent capacity events in memory — a flight
// recorder for tests and post-mortem inspection. Safe for concurrent use.
//
// Wrap semantics: once the (capacity+1)-th event is pushed the ring starts
// overwriting its oldest slot, so a reader only ever sees the newest
// `capacity` events; Dropped counts the overwritten ones. Events and Drain
// copy the buffer under the ring's lock, so a snapshot taken while other
// goroutines push is a consistent contiguous suffix of the emission order —
// a wrap can happen before or after a snapshot, never "inside" one.
type RingSink struct {
	mu      sync.Mutex
	buf     []any //fbvet:guardedby mu
	next    int   //fbvet:guardedby mu
	wrap    bool  //fbvet:guardedby mu
	total   int64 //fbvet:guardedby mu
	dropped int64 //fbvet:guardedby mu
}

// NewRingSink returns a ring holding up to capacity events (min 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]any, capacity)}
}

func (r *RingSink) push(ev any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf[r.next] != nil {
		r.dropped++ // overwriting an event nobody drained
	}
	r.buf[r.next] = ev
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrap = true
	}
}

// eventsLocked copies the buffered events oldest-first; r.mu must be held.
func (r *RingSink) eventsLocked() []any {
	if !r.wrap {
		return append([]any(nil), r.buf[:r.next]...)
	}
	out := make([]any, 0, len(r.buf))
	// After a wrap, buf[next:] holds the oldest events and buf[:next] the
	// newest — at the exact wrap boundary (next == 0) this is the whole
	// buffer in push order. Drained slots are nil and skipped.
	for _, ev := range r.buf[r.next:] {
		if ev != nil {
			out = append(out, ev)
		}
	}
	for _, ev := range r.buf[:r.next] {
		if ev != nil {
			out = append(out, ev)
		}
	}
	return out
}

// Events returns the buffered events oldest-first, leaving them buffered.
func (r *RingSink) Events() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked()
}

// Drain returns the buffered events in emission order and empties the ring:
// a subsequent Events, or another Drain, observes only later pushes. Total
// and Dropped are preserved — draining consumes events, it does not drop
// them.
func (r *RingSink) Drain() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.eventsLocked()
	for i := range r.buf {
		r.buf[i] = nil
	}
	r.next = 0
	r.wrap = false
	return out
}

// Total reports how many events were ever pushed (including overwritten ones).
func (r *RingSink) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many events were overwritten before any Drain
// retrieved them — the flight recorder's data-loss counter.
func (r *RingSink) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Admit implements Tracer.
func (r *RingSink) Admit(e AdmitEvent) { r.push(e) }

// Load implements Tracer.
func (r *RingSink) Load(e LoadEvent) { r.push(e) }

// Evict implements Tracer.
func (r *RingSink) Evict(e EvictEvent) { r.push(e) }

// SelectRound implements Tracer.
func (r *RingSink) SelectRound(e SelectRoundEvent) { r.push(e) }

// CreditDecay implements Tracer.
func (r *RingSink) CreditDecay(e CreditDecayEvent) { r.push(e) }

// Stage implements Tracer.
func (r *RingSink) Stage(e StageEvent) { r.push(e) }

// JobServed implements Tracer.
func (r *RingSink) JobServed(e JobServedEvent) { r.push(e) }

// ReplicaPlan implements Tracer.
func (r *RingSink) ReplicaPlan(e ReplicaPlanEvent) { r.push(e) }

// Span implements Tracer.
func (r *RingSink) Span(e SpanEvent) { r.push(e) }

// TraceStats aggregates event counts and headline byte totals.
type TraceStats struct {
	Admits       int64 `json:"admits"`
	Hits         int64 `json:"hits"`
	Unserviced   int64 `json:"unserviced"`
	Loads        int64 `json:"loads"`
	Evicts       int64 `json:"evicts"`
	SelectRounds int64 `json:"select_rounds"`
	CreditDecays int64 `json:"credit_decays"`
	StageStarts  int64 `json:"stage_starts"`
	StageRetries int64 `json:"stage_retries"`
	Failovers    int64 `json:"failovers"`
	StageDones   int64 `json:"stage_dones"`
	JobsServed   int64 `json:"jobs_served"`
	ReplicaPlans int64 `json:"replica_plans"`
	BytesLoaded  int64 `json:"bytes_loaded"`
	BytesEvicted int64 `json:"bytes_evicted"`
	// BytesReplicated sums ReplicaPlanEvent.Bytes — the re-replication
	// traffic the adaptive planner moved.
	BytesReplicated int64 `json:"bytes_replicated"`
	// Spans counts wall-clock request spans (see SpanEvent); SpanErrors is
	// the subset that finished with a non-empty error class.
	Spans      int64 `json:"spans"`
	SpanErrors int64 `json:"span_errors"`
}

// StatsSink counts events without retaining them — the cheapest way to
// assert "N evictions happened" in a test. Safe for concurrent use.
type StatsSink struct {
	mu sync.Mutex
	st TraceStats //fbvet:guardedby mu
}

// NewStatsSink returns an empty aggregating sink.
func NewStatsSink() *StatsSink { return &StatsSink{} }

// Stats returns a copy of the aggregated counts.
func (s *StatsSink) Stats() TraceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// Admit implements Tracer.
func (s *StatsSink) Admit(e AdmitEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Admits++
	if e.Hit {
		s.st.Hits++
	}
	if e.Unserviceable {
		s.st.Unserviced++
	}
}

// Load implements Tracer.
func (s *StatsSink) Load(e LoadEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Loads++
	s.st.BytesLoaded += e.Bytes
}

// Evict implements Tracer.
func (s *StatsSink) Evict(e EvictEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Evicts++
	s.st.BytesEvicted += e.Bytes
}

// SelectRound implements Tracer.
func (s *StatsSink) SelectRound(SelectRoundEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.SelectRounds++
}

// CreditDecay implements Tracer.
func (s *StatsSink) CreditDecay(CreditDecayEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.CreditDecays++
}

// Stage implements Tracer.
func (s *StatsSink) Stage(e StageEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Phase {
	case StageStart:
		s.st.StageStarts++
	case StageRetry:
		s.st.StageRetries++
	case StageFailover:
		s.st.Failovers++
	case StageDone:
		s.st.StageDones++
	}
}

// JobServed implements Tracer.
func (s *StatsSink) JobServed(JobServedEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.JobsServed++
}

// ReplicaPlan implements Tracer.
func (s *StatsSink) ReplicaPlan(e ReplicaPlanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.ReplicaPlans++
	s.st.BytesReplicated += e.Bytes
}

// Span implements Tracer.
func (s *StatsSink) Span(e SpanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Spans++
	if e.Err != "" {
		s.st.SpanErrors++
	}
}

// MultiTracer fans every event out to each tracer in order.
type MultiTracer []Tracer

// Admit implements Tracer.
func (m MultiTracer) Admit(e AdmitEvent) {
	for _, t := range m {
		t.Admit(e)
	}
}

// Load implements Tracer.
func (m MultiTracer) Load(e LoadEvent) {
	for _, t := range m {
		t.Load(e)
	}
}

// Evict implements Tracer.
func (m MultiTracer) Evict(e EvictEvent) {
	for _, t := range m {
		t.Evict(e)
	}
}

// SelectRound implements Tracer.
func (m MultiTracer) SelectRound(e SelectRoundEvent) {
	for _, t := range m {
		t.SelectRound(e)
	}
}

// CreditDecay implements Tracer.
func (m MultiTracer) CreditDecay(e CreditDecayEvent) {
	for _, t := range m {
		t.CreditDecay(e)
	}
}

// Stage implements Tracer.
func (m MultiTracer) Stage(e StageEvent) {
	for _, t := range m {
		t.Stage(e)
	}
}

// JobServed implements Tracer.
func (m MultiTracer) JobServed(e JobServedEvent) {
	for _, t := range m {
		t.JobServed(e)
	}
}

// ReplicaPlan implements Tracer.
func (m MultiTracer) ReplicaPlan(e ReplicaPlanEvent) {
	for _, t := range m {
		t.ReplicaPlan(e)
	}
}

// Span implements Tracer.
func (m MultiTracer) Span(e SpanEvent) {
	for _, t := range m {
		t.Span(e)
	}
}
