package span

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"fbcache/internal/obs"
)

// ev builds a SpanEvent the way Span.Event does, from explicit times.
func ev(req, id, parent uint64, op string, start, end float64) obs.SpanEvent {
	return obs.SpanEvent{At: end, Req: req, Span: id, Parent: parent, Op: op, DurSec: end - start}
}

func TestTreesReconstruction(t *testing.T) {
	events := []obs.SpanEvent{
		// Request 2 finishes first but starts second; child order shuffled.
		ev(2, 10, 0, "stage", 1.5, 2.0),
		ev(2, 12, 10, "stage.admit", 1.8, 1.9),
		ev(2, 11, 10, "stage.wait", 1.6, 1.7),
		// Request 1: root whose parent lives in another process — still a root.
		ev(1, 5, 999, "stage", 1.0, 3.0),
		ev(1, 6, 5, "stage.admit", 1.1, 1.2),
		// Grandchild nesting.
		ev(1, 7, 6, "stage.store", 1.15, 1.18),
	}
	roots := Trees(events)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	if roots[0].Req != 1 || roots[1].Req != 2 {
		t.Fatalf("roots ordered %d,%d by start; want 1,2", roots[0].Req, roots[1].Req)
	}
	r1 := roots[0]
	if len(r1.Children) != 1 || r1.Children[0].Op != "stage.admit" {
		t.Fatalf("request 1 children = %+v, want one admit leg", r1.Children)
	}
	if gc := r1.Children[0].Children; len(gc) != 1 || gc[0].Op != "stage.store" {
		t.Fatalf("grandchild = %+v, want the store leg under admit", gc)
	}
	r2 := roots[1]
	if len(r2.Children) != 2 || r2.Children[0].Op != "stage.wait" || r2.Children[1].Op != "stage.admit" {
		t.Fatalf("request 2 children = %+v, want wait then admit by start time", r2.Children)
	}

	// Same events, different order → identical trees (determinism).
	shuffled := []obs.SpanEvent{events[5], events[2], events[0], events[4], events[3], events[1]}
	again := Trees(shuffled)
	want, _ := json.Marshal(roots)
	got, _ := json.Marshal(again)
	if string(want) != string(got) {
		t.Fatalf("tree depends on event order:\n%s\n%s", want, got)
	}
}

func TestTreesSelfParentDoesNotCycle(t *testing.T) {
	roots := Trees([]obs.SpanEvent{ev(1, 5, 5, "stage", 0, 1)})
	if len(roots) != 1 || len(roots[0].Children) != 0 {
		t.Fatalf("self-parented span = %+v, want a lone root", roots)
	}
}

func TestFlightHandler(t *testing.T) {
	rec := New(Options{Stripes: 1, PerStripe: 64, SlowThreshold: time.Nanosecond, SampleEvery: 1 << 62})
	serveOne(rec, Context{}, ErrBusy)

	rr := httptest.NewRecorder()
	FlightHandler(rec).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var snap struct {
		Counters Counters `json:"counters"`
		Requests []*Node  `json:"requests"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, rr.Body.String())
	}
	if snap.Counters.Requests != 1 || snap.Counters.Anomalies != 1 {
		t.Errorf("counters = %+v, want 1 request / 1 anomaly", snap.Counters)
	}
	if len(snap.Requests) != 1 {
		t.Fatalf("got %d request trees, want 1", len(snap.Requests))
	}
	root := snap.Requests[0]
	if root.Op != "stage" || root.Err != "busy" || len(root.Children) != 2 {
		t.Errorf("tree root = %+v with %d children, want busy stage with 2 legs",
			root.SpanEvent, len(root.Children))
	}
}

func TestFlightHandlerNilRecorder(t *testing.T) {
	rr := httptest.NewRecorder()
	FlightHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("nil-recorder response not JSON: %v", err)
	}
	if string(snap["requests"]) != "[]" {
		t.Errorf("requests = %s, want []", snap["requests"])
	}
}

func TestSpanEventRoundTripsThroughRecorder(t *testing.T) {
	rec := New(slowOpts())
	serveOne(rec, Context{}, ErrStore)
	for _, s := range rec.Kept() {
		e := s.Event()
		if e.Op != s.Op.String() || e.Req != uint64(s.Req) || e.Span != uint64(s.ID) {
			t.Errorf("Event() identity fields diverge: %+v vs %+v", e, s)
		}
		if e.DurSec < 0 || e.At <= 0 {
			t.Errorf("Event() time fields out of range: %+v", e)
		}
		if s.Err == ErrStore && e.Err != "store" {
			t.Errorf("err name = %q, want store", e.Err)
		}
	}
}

func TestOpAndErrNames(t *testing.T) {
	seen := map[string]Op{}
	for op := OpNone; op < opCount; op++ {
		name := op.String()
		if name == "" || name == "unknown" {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("ops %d and %d share name %q", prev, op, name)
		}
		seen[name] = op
	}
	if Op(200).String() != "unknown" {
		t.Error("out-of-range op did not stringify as unknown")
	}
	if ErrNone.String() != "" {
		t.Errorf("ErrNone = %q, want empty", ErrNone.String())
	}
	for e := ErrNone + 1; e < errCount; e++ {
		if e.String() == "" || e.String() == "unknown" {
			t.Errorf("err %d has no name", e)
		}
	}
	if ErrCode(200).String() != "unknown" {
		t.Error("out-of-range err did not stringify as unknown")
	}
}
