package span

import (
	"encoding/json"
	"net/http"
	"sort"

	"fbcache/internal/obs"
)

// Node is one span in a reconstructed request tree. The SpanEvent fields
// inline into the node's JSON object, with children nested under it.
type Node struct {
	obs.SpanEvent
	Children []*Node `json:"children,omitempty"`
}

// start is the node's span start time, recovered from end and duration.
func (n *Node) start() float64 { return n.At - n.DurSec }

// Trees reconstructs request trees from completed-span events: spans link
// to their parent within the same request; spans whose parent is unknown —
// true roots, or spans whose parent lives in another process's recorder —
// become tree roots. Roots sort by start time (ties by request then span
// ID), children likewise, so output is deterministic for a given input
// set regardless of event order.
func Trees(events []obs.SpanEvent) []*Node {
	type key struct{ req, span uint64 }
	nodes := make(map[key]*Node, len(events))
	order := make([]*Node, 0, len(events))
	for _, e := range events {
		n := &Node{SpanEvent: e}
		nodes[key{e.Req, e.Span}] = n
		order = append(order, n)
	}
	var roots []*Node
	for _, n := range order {
		if p, ok := nodes[key{n.Req, n.Parent}]; ok && n.Parent != 0 && p != n {
			p.Children = append(p.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	byStart := func(v []*Node) {
		sort.Slice(v, func(i, j int) bool {
			if v[i].start() != v[j].start() { //fbvet:allow floateq — sort comparator needs a total order; tolerant ties are not transitive
				return v[i].start() < v[j].start()
			}
			if v[i].Req != v[j].Req {
				return v[i].Req < v[j].Req
			}
			return v[i].Span < v[j].Span
		})
	}
	byStart(roots)
	for _, n := range order {
		if len(n.Children) > 1 {
			byStart(n.Children)
		}
	}
	return roots
}

// flightSnapshot is the /debug/flight response body.
type flightSnapshot struct {
	Counters Counters `json:"counters"`
	// Requests are the kept requests as reconstructed trees, oldest first.
	Requests []*Node `json:"requests"`
}

// FlightHandler serves the recorder's kept ring as JSON: the accounting
// counters plus every promoted request reconstructed into a span tree.
// Mount it on the srmd debug mux as /debug/flight. A nil recorder serves
// an empty snapshot, so the endpoint is always present.
func FlightHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		kept := r.Kept()
		events := make([]obs.SpanEvent, len(kept))
		for i, s := range kept {
			events[i] = s.Event()
		}
		trees := Trees(events)
		if trees == nil {
			trees = []*Node{} // [] not null for an idle recorder
		}
		snap := flightSnapshot{Counters: r.Counters(), Requests: trees}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap) // client gone mid-write; nothing to do
	})
}
