// Package span is the request-telemetry layer for the SRM serving path:
// wall-clock spans with request/parent IDs propagated through the srm wire
// protocol (Client → Server → SRM → store/cache legs), recorded by an
// always-on lock-striped flight recorder with tail sampling — slow or
// failed requests are kept at full fidelity and dumped to a JSONL sink,
// the rest head-sampled — and per-operation log-bucket latency histograms
// exportable into an obs.Registry.
//
// Unlike the simulator tracer (internal/obs.Tracer events, which stamp
// sim-time or ordinals and never read the wall clock), spans exist to
// measure real serving latency: timestamps are nanoseconds of monotonic
// wall clock since the recorder's epoch. Spans therefore never flow into
// simulation state.
//
// The disabled path is free: every entry point is a method on a possibly
// nil *Recorder (or on the zero Active handle it returns), costs one
// branch, and provably does not allocate (see BenchmarkSpanDisabled,
// CI-gated at 0 allocs/op).
package span

import "time"

// RequestID identifies one request as seen by one recorder. IDs are
// assigned densely from 1; zero means "no request context".
type RequestID uint64

// SpanID identifies one span within a recorder. Zero means "no span"; a
// root span's Parent may carry a SpanID assigned by a *different* process's
// recorder (the client's RPC span), which is a best-effort join key only.
type SpanID uint64

// Op names the operation a span measures. The set is closed and small so
// the recorder can keep per-op histograms in a flat array with no map
// lookups on the hot path.
type Op uint8

const (
	// OpNone marks the zero Span; it is never recorded.
	OpNone Op = iota
	// OpStage is the server-side root of one stage dispatch.
	OpStage
	// OpStageWait is the leg a stage request spends blocked on capacity
	// (the SRM cond-var wait loop) — the queue-wait distribution.
	OpStageWait
	// OpStageAdmit is the policy admission leg (Policy.Admit + bookkeeping).
	OpStageAdmit
	// OpStageStore is the backing-store synchronization leg.
	OpStageStore
	// OpRelease is the server-side root of one lease release.
	OpRelease
	// OpAddFile is the server-side root of one catalog registration.
	OpAddFile
	// OpStats is the server-side root of one stats snapshot.
	OpStats
	// OpRPCStage..OpRPCStats are the client-observed round trips, wire and
	// server time included.
	OpRPCStage
	// OpRPCRelease is the client-observed release round trip.
	OpRPCRelease
	// OpRPCAddFile is the client-observed addfile round trip.
	OpRPCAddFile
	// OpRPCStats is the client-observed stats round trip.
	OpRPCStats

	opCount // sentinel, keep last
)

// opNames is indexed by Op; the names appear verbatim in SpanEvent.Op and
// in the {op="..."} label of every exported metric.
var opNames = [opCount]string{
	OpNone:       "none",
	OpStage:      "stage",
	OpStageWait:  "stage.wait",
	OpStageAdmit: "stage.admit",
	OpStageStore: "stage.store",
	OpRelease:    "release",
	OpAddFile:    "addfile",
	OpStats:      "stats",
	OpRPCStage:   "rpc.stage",
	OpRPCRelease: "rpc.release",
	OpRPCAddFile: "rpc.addfile",
	OpRPCStats:   "rpc.stats",
}

func (o Op) String() string {
	if o < opCount {
		return opNames[o]
	}
	return "unknown"
}

// ErrCode classifies how a span finished. The closed set keeps error
// accounting allocation-free (no error strings on the hot path) and maps
// one-to-one onto the srm sentinel errors.
type ErrCode uint8

const (
	// ErrNone means the operation succeeded.
	ErrNone ErrCode = iota
	// ErrBusy maps srm.ErrBusy: admission timed out waiting for capacity.
	ErrBusy
	// ErrTooLarge maps srm.ErrTooLarge: the bundle cannot fit even in an
	// empty cache.
	ErrTooLarge
	// ErrClosed maps srm.ErrClosed: the SRM shut down mid-request.
	ErrClosed
	// ErrStore is a backing-store synchronization failure.
	ErrStore
	// ErrOther is any error outside the classified set.
	ErrOther

	errCount // sentinel, keep last
)

// errNames is indexed by ErrCode; ErrNone is the empty string so the JSON
// field omits cleanly on success.
var errNames = [errCount]string{
	ErrNone:     "",
	ErrBusy:     "busy",
	ErrTooLarge: "too_large",
	ErrClosed:   "closed",
	ErrStore:    "store",
	ErrOther:    "other",
}

func (e ErrCode) String() string {
	if e < errCount {
		return errNames[e]
	}
	return "unknown"
}

// Context is the propagated part of a span: the request it belongs to and
// the span to parent new work under. The zero Context means "no tracing" —
// StartChild under it is free — and is what a request root starts from.
// Contexts cross the srm wire protocol as two uint64 fields.
type Context struct {
	Req    RequestID
	Parent SpanID
}

// Span is one completed operation. It is a plain value — fixed-size typed
// attributes instead of a tag map — so rings of spans are single
// allocations and recording one is a struct copy.
type Span struct {
	Req    RequestID
	ID     SpanID
	Parent SpanID
	Op     Op
	// Start and End are nanoseconds of monotonic wall clock since the
	// recorder's epoch (see Recorder).
	Start int64
	End   int64
	Bytes int64
	Files int32
	Hit   bool
	Err   ErrCode
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Active is a live span handle. It is a value type: starting a span
// allocates nothing, and the zero Active (from a nil recorder or an empty
// Context) makes every method a no-op, so emit sites need no nil checks.
type Active struct {
	rec  *Recorder
	span Span
	root bool
}

// OK reports whether the handle is recording (non-zero). Emit sites use it
// to skip attribute computation that only matters when tracing is on.
func (a *Active) OK() bool { return a.rec != nil }

// Context returns the propagation context for work nested under this span.
// For the zero Active it returns the zero Context, so children of an
// untraced span are untraced too.
func (a *Active) Context() Context {
	if a.rec == nil {
		return Context{}
	}
	return Context{Req: a.span.Req, Parent: a.span.ID}
}

// Req reports the span's request ID (zero for the zero Active).
func (a *Active) Req() RequestID { return a.span.Req }

// ID reports the span's own ID (zero for the zero Active) — what a client
// puts on the wire so the server's root span can parent under it.
func (a *Active) ID() SpanID { return a.span.ID }

// SetBytes attaches a byte count (bytes loaded for admissions, bytes
// requested for RPCs).
func (a *Active) SetBytes(n int64) {
	if a.rec != nil {
		a.span.Bytes = n
	}
}

// SetFiles attaches the file count of the bundle being served.
func (a *Active) SetFiles(n int) {
	if a.rec != nil {
		a.span.Files = int32(n)
	}
}

// SetHit marks the request a full cache hit.
func (a *Active) SetHit(hit bool) {
	if a.rec != nil {
		a.span.Hit = hit
	}
}

// AdoptRequest relabels the span with a request ID assigned elsewhere —
// the client adopts the server's ID from the response so offline analysis
// can join the client RPC span with the server's request tree. Zero ids
// are ignored; the adopted ID also drives this span's sampling decision.
func (a *Active) AdoptRequest(req RequestID) {
	if a.rec != nil && req != 0 {
		a.span.Req = req
	}
}

// Finish stamps the end time and hands the completed span to the recorder.
// Exactly one Finish per Active; the handle must not be used afterwards.
// No-op on the zero Active.
func (a *Active) Finish(err ErrCode) {
	if a.rec == nil {
		return
	}
	a.span.Err = err
	a.span.End = a.rec.now()
	a.rec.finish(a.span, a.root)
	a.rec = nil
}
