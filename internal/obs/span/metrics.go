package span

import (
	"time"

	"fbcache/internal/obs"
)

// quantileOrZero reads a live quantile, mapping the no-observations NaN to
// 0 so the Prometheus exposition stays parseable (same convention as
// srm.NewRegistry's request-size gauges).
func quantileOrZero(h *obs.Histogram, q float64) float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.Quantile(q)
}

// ExportTo registers the recorder's per-operation latency histograms
// (fbcache_op_latency_seconds{op="..."} with p50/p90/p99 gauges), error and
// retry counters, the request in-flight gauge and the flight-recorder
// accounting on reg. Call once per registry; the obs name-collision panic
// catches double export. Safe on a nil recorder (registers nothing).
func (r *Recorder) ExportTo(reg *obs.Registry) {
	if r == nil {
		return
	}
	for op := OpNone + 1; op < opCount; op++ {
		h := r.lat[op]
		label := `{op="` + op.String() + `"}`
		reg.RegisterHistogram("fbcache_op_latency_seconds"+label,
			"Wall-clock span latency per operation (seconds).", h)
		for _, q := range []struct {
			name string
			q    float64
		}{
			{"fbcache_op_latency_p50_seconds", 0.50},
			{"fbcache_op_latency_p90_seconds", 0.90},
			{"fbcache_op_latency_p99_seconds", 0.99},
		} {
			q := q
			reg.GaugeFunc(q.name+label,
				"Interpolated latency quantile of fbcache_op_latency_seconds.",
				func() float64 { return quantileOrZero(h, q.q) })
		}
		errs, retries := &r.errs[op], &r.retries[op]
		reg.CounterFunc("fbcache_op_errors_total"+label,
			"Spans finished with a non-empty error class.",
			func() float64 { return float64(errs.Load()) })
		reg.CounterFunc("fbcache_op_retries_total"+label,
			"Operation retries observed by the span layer.",
			func() float64 { return float64(retries.Load()) })
	}
	reg.GaugeFunc("fbcache_spans_inflight",
		"Request root spans started but not yet finished.",
		func() float64 { return float64(r.inflight.Load()) })
	reg.CounterFunc("fbcache_flight_requests_total",
		"Request roots finished by the flight recorder.",
		func() float64 { return float64(r.requests.Load()) })
	reg.CounterFunc("fbcache_flight_kept_total",
		"Requests promoted to the kept ring (anomalous or head-sampled).",
		func() float64 { return float64(r.keptReqs.Load()) })
	reg.CounterFunc("fbcache_flight_anomalies_total",
		"Requests promoted for error or slowness.",
		func() float64 { return float64(r.anomalies.Load()) })
	reg.CounterFunc("fbcache_flight_dropped_total",
		"Spans overwritten in the recorder rings before inspection.",
		func() float64 { return float64(r.Counters().Dropped) })
}

// OpLatencyQuantile reads a live latency quantile for op, in seconds
// (0 when nothing observed, NaN never). Safe on nil (0).
func (r *Recorder) OpLatencyQuantile(op Op, q float64) float64 {
	if r == nil || op <= OpNone || op >= opCount {
		return 0
	}
	return quantileOrZero(r.lat[op], q)
}

// OpErrors reports how many op spans finished with an error. Safe on nil.
func (r *Recorder) OpErrors(op Op) int64 {
	if r == nil || op >= opCount {
		return 0
	}
	return r.errs[op].Load()
}

// SlowThreshold reports the anomaly threshold the recorder runs with.
// Safe on nil (0).
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowNs)
}
