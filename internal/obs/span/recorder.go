package span

import (
	"bufio"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fbcache/internal/obs"
)

// Event converts a completed span to its trace form (see obs.SpanEvent):
// times become seconds since the recorder epoch, enums become their names.
func (s Span) Event() obs.SpanEvent {
	return obs.SpanEvent{
		At:     float64(s.End) / 1e9,
		Req:    uint64(s.Req),
		Span:   uint64(s.ID),
		Parent: uint64(s.Parent),
		Op:     s.Op.String(),
		DurSec: float64(s.End-s.Start) / 1e9,
		Bytes:  s.Bytes,
		Files:  int(s.Files),
		Hit:    s.Hit,
		Err:    s.Err.String(),
	}
}

// Options configures a Recorder. The zero value is usable: every field has
// a production default.
type Options struct {
	// Stripes is the number of independent ring/lock pairs; rounded up to a
	// power of two. Default 8. All spans of one request hash to one stripe,
	// so promotion never crosses stripe locks.
	Stripes int
	// PerStripe is each stripe's ring capacity, for both the recent ring
	// (all finished spans) and the kept ring (promoted requests).
	// Default 256 spans.
	PerStripe int
	// SlowThreshold is the root duration at or above which a request is an
	// anomaly, kept at full fidelity and dumped. Default 100ms.
	SlowThreshold time.Duration
	// SampleEvery keeps every N-th healthy request (head sampling by
	// request ID) so the flight recorder always holds baseline traffic, not
	// just anomalies. Default 16; 1 keeps everything.
	SampleEvery uint64
	// Dump receives every span of an anomalous request, root last, after
	// the request is promoted. Typically a JSONL sink (see FileDump). Dump
	// methods are called without any recorder lock held.
	Dump obs.Tracer
	// DumpCloser, if set, is closed exactly once by Recorder.Close — the
	// flush/close half of FileDump.
	DumpCloser io.Closer
}

// spanRing is a fixed-capacity overwrite ring of spans. Slots holding the
// zero Span (Op == OpNone) are empty: promotion steals a request's spans
// by zeroing them in place, leaving holes that readers skip.
type spanRing struct {
	buf  []Span
	next int
}

func (r *spanRing) push(s Span) (overwrote bool) {
	overwrote = r.buf[r.next].Op != OpNone
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	return overwrote
}

// appendTo copies the live spans oldest-first onto dst.
func (r *spanRing) appendTo(dst []Span) []Span {
	for i := r.next; i < len(r.buf); i++ {
		if r.buf[i].Op != OpNone {
			dst = append(dst, r.buf[i])
		}
	}
	for i := 0; i < r.next; i++ {
		if r.buf[i].Op != OpNone {
			dst = append(dst, r.buf[i])
		}
	}
	return dst
}

// take moves every span of req from the ring onto dst, oldest-first,
// zeroing the stolen slots.
func (r *spanRing) take(req RequestID, dst []Span) []Span {
	for i := r.next; i < len(r.buf); i++ {
		if r.buf[i].Op != OpNone && r.buf[i].Req == req {
			dst = append(dst, r.buf[i])
			r.buf[i] = Span{}
		}
	}
	for i := 0; i < r.next; i++ {
		if r.buf[i].Op != OpNone && r.buf[i].Req == req {
			dst = append(dst, r.buf[i])
			r.buf[i] = Span{}
		}
	}
	return dst
}

// stripe is one lock's worth of recorder state. Its mutex is a leaf in the
// repo lock hierarchy (DESIGN.md §10): the recorder never acquires another
// lock — in particular not the dump sink's — while holding it.
type stripe struct {
	mu      sync.Mutex
	recent  spanRing //fbvet:guardedby mu
	kept    spanRing //fbvet:guardedby mu
	scratch []Span   //fbvet:guardedby mu
	dropped int64    //fbvet:guardedby mu
}

// Recorder is an always-on flight recorder for request spans. Finished
// spans land in a lock-striped recent ring; when a request's root span
// finishes, tail sampling decides its fate: anomalous (error, or slower
// than SlowThreshold) and head-sampled requests are promoted — all their
// spans move to the kept ring, anomalies additionally streamed to the Dump
// sink — while the rest stay in the recent ring until overwritten.
//
// All methods are safe for concurrent use, and safe on a nil receiver
// (every method is a cheap no-op), so "tracing off" is the nil *Recorder.
type Recorder struct {
	epoch       time.Time
	slowNs      int64
	sampleEvery uint64
	closer      io.Closer

	// Lock-free instruments and immutable-after-New layout, declared ahead
	// of dumpMu: none of these are guarded by it.
	nextReq   atomic.Uint64
	nextSpan  atomic.Uint64
	inflight  atomic.Int64
	requests  atomic.Int64
	keptReqs  atomic.Int64
	anomalies atomic.Int64

	lat     [opCount]*obs.Histogram
	errs    [opCount]atomic.Int64
	retries [opCount]atomic.Int64

	mask    uint64
	stripes []stripe

	// dumpMu serializes anomaly emission against Close, so the sink's
	// buffer is never flushed mid-write. Like the stripe locks it is a leaf
	// — except that the dump sink's own lock nests inside it, which is fine:
	// nothing else ever holds a sink lock first.
	dumpMu   sync.Mutex
	dump     obs.Tracer //fbvet:guardedby dumpMu
	closed   bool       //fbvet:guardedby dumpMu
	closeErr error      //fbvet:guardedby dumpMu
}

// Latency histogram layout: 50µs · 2^k for 24 buckets reaches ~7 minutes,
// covering loopback RPCs and pathological stalls alike with ≤2× relative
// error per bucket.
const (
	latStart   = 50e-6
	latFactor  = 2
	latBuckets = 24
)

// New builds a recorder. See Options for defaults.
func New(o Options) *Recorder {
	if o.Stripes <= 0 {
		o.Stripes = 8
	}
	n := 1
	for n < o.Stripes {
		n <<= 1
	}
	if o.PerStripe <= 0 {
		o.PerStripe = 256
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 100 * time.Millisecond
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 16
	}
	r := &Recorder{
		epoch:       time.Now(),
		slowNs:      o.SlowThreshold.Nanoseconds(),
		sampleEvery: o.SampleEvery,
		dump:        o.Dump,
		closer:      o.DumpCloser,
		mask:        uint64(n - 1),
		stripes:     make([]stripe, n),
	}
	for i := range r.stripes {
		r.stripes[i].recent.buf = make([]Span, o.PerStripe)
		r.stripes[i].kept.buf = make([]Span, o.PerStripe)
	}
	// OpNone gets a histogram too — never exported, but a span started with
	// it (e.g. an unclassifiable wire op) must not crash the recorder.
	for op := OpNone; op < opCount; op++ {
		r.lat[op] = obs.NewExpHistogram(latStart, latFactor, latBuckets)
	}
	return r
}

// now is nanoseconds of monotonic wall clock since the recorder's epoch.
func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// StartRequest opens a request root span. With a zero ctx.Req (a fresh
// request arriving at this process) the recorder assigns the next request
// ID; a non-zero ctx.Req continues a request labeled elsewhere. ctx.Parent
// (if any) becomes the root's parent — the caller's span in another
// process. Nil recorder: returns the zero Active.
func (r *Recorder) StartRequest(ctx Context, op Op) Active {
	if r == nil {
		return Active{}
	}
	req := ctx.Req
	if req == 0 {
		req = RequestID(r.nextReq.Add(1))
	}
	r.inflight.Add(1)
	return Active{rec: r, root: true, span: Span{
		Req:    req,
		ID:     SpanID(r.nextSpan.Add(1)),
		Parent: ctx.Parent,
		Op:     op,
		Start:  r.now(),
	}}
}

// StartChild opens a span nested under ctx. Under the zero Context (no
// request being traced) it returns the zero Active, so instrumented legs
// cost one branch when called outside any request. Nil recorder: same.
func (r *Recorder) StartChild(ctx Context, op Op) Active {
	if r == nil || ctx.Req == 0 {
		return Active{}
	}
	return Active{rec: r, span: Span{
		Req:    ctx.Req,
		ID:     SpanID(r.nextSpan.Add(1)),
		Parent: ctx.Parent,
		Op:     op,
		Start:  r.now(),
	}}
}

// Retry counts one retry of op (e.g. a client re-dialing a busy stage).
// Safe on nil.
func (r *Recorder) Retry(op Op) {
	if r == nil {
		return
	}
	r.retries[op].Add(1)
}

// finish records a completed span: latency and error accounting, then ring
// placement — and, for roots, the tail-sampling decision.
func (r *Recorder) finish(s Span, root bool) {
	durNs := s.End - s.Start
	r.lat[s.Op].Observe(float64(durNs) / 1e9)
	if s.Err != ErrNone {
		r.errs[s.Op].Add(1)
	}
	st := &r.stripes[uint64(s.Req)&r.mask]
	if !root {
		st.mu.Lock()
		if st.recent.push(s) {
			st.dropped++
		}
		st.mu.Unlock()
		return
	}

	r.inflight.Add(-1)
	r.requests.Add(1)
	anomalous := s.Err != ErrNone || durNs >= r.slowNs
	if !anomalous && uint64(s.Req)%r.sampleEvery != 0 {
		st.mu.Lock()
		if st.recent.push(s) {
			st.dropped++
		}
		st.mu.Unlock()
		return
	}

	// Promote: steal the request's leg spans from the recent ring, append
	// the root, move everything to the kept ring. scratch is reused across
	// promotions so the steady state allocates nothing.
	var dumpCopy []Span
	st.mu.Lock()
	st.scratch = st.recent.take(s.Req, st.scratch[:0])
	st.scratch = append(st.scratch, s)
	for _, ks := range st.scratch {
		if st.kept.push(ks) {
			st.dropped++
		}
	}
	if anomalous {
		// The sink runs outside the stripe lock (it takes its own locks and
		// does I/O); anomalies are rare, so this copy is off the hot path.
		dumpCopy = append(dumpCopy, st.scratch...)
	}
	st.mu.Unlock()

	r.keptReqs.Add(1)
	if anomalous {
		r.anomalies.Add(1)
		r.dumpMu.Lock()
		if r.dump != nil {
			for _, ds := range dumpCopy {
				r.dump.Span(ds.Event())
			}
		}
		r.dumpMu.Unlock()
	}
}

// Counters is the recorder's headline accounting.
type Counters struct {
	// Requests counts finished request roots; Kept the subset promoted to
	// the kept ring; Anomalies the subset promoted for error/slowness.
	Requests  int64 `json:"requests"`
	Kept      int64 `json:"kept"`
	Anomalies int64 `json:"anomalies"`
	// Dropped counts spans overwritten in either ring before inspection.
	Dropped int64 `json:"dropped"`
	// Inflight is the number of request roots started but not finished.
	Inflight int64 `json:"inflight"`
}

// Counters snapshots the recorder's accounting. Safe on nil (all zeros).
func (r *Recorder) Counters() Counters {
	if r == nil {
		return Counters{}
	}
	c := Counters{
		Requests:  r.requests.Load(),
		Kept:      r.keptReqs.Load(),
		Anomalies: r.anomalies.Load(),
		Inflight:  r.inflight.Load(),
	}
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		c.Dropped += st.dropped
		st.mu.Unlock()
	}
	return c
}

// Kept returns the promoted spans across all stripes, ordered by start
// time (ties by span ID) — the full-fidelity view /debug/flight serves.
// Safe on nil (empty).
func (r *Recorder) Kept() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		out = st.kept.appendTo(out)
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Close flushes and closes the dump sink (Options.DumpCloser), exactly
// once; later calls return the first result. Safe on nil. Recorder methods
// remain usable after Close — spans keep landing in the rings, only the
// dump stream is gone — so a draining server can finish in-flight requests
// without racing shutdown.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()
	if !r.closed {
		r.closed = true
		r.dump = nil
		if r.closer != nil {
			r.closeErr = r.closer.Close()
		}
	}
	return r.closeErr
}

// fileSink is FileDump's closer: flush the buffer, then close the file.
type fileSink struct {
	f *os.File
	w *bufio.Writer
}

// Close implements io.Closer.
func (fs *fileSink) Close() error {
	ferr := fs.w.Flush()
	cerr := fs.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// FileDump creates (truncating) a JSONL anomaly sink writing to path,
// buffered. Wire the two return values into Options.Dump and
// Options.DumpCloser; the closer flushes the buffer, so tail events
// survive shutdown only if Recorder.Close runs (see srm.Server.Shutdown).
func FileDump(path string) (*obs.JSONLSink, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	return obs.NewJSONLSink(w), &fileSink{f: f, w: w}, nil
}
