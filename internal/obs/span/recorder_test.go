package span

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fbcache/internal/obs"
)

// slowOpts makes every request anomalous (SlowThreshold 1ns) so tests can
// rely on promotion without sleeping.
func slowOpts() Options {
	return Options{Stripes: 2, PerStripe: 32, SlowThreshold: time.Nanosecond, SampleEvery: 1 << 62}
}

// serveOne runs one synthetic request through rec: a root with a wait and
// an admit leg, finishing with err.
func serveOne(rec *Recorder, ctx Context, err ErrCode) RequestID {
	root := rec.StartRequest(ctx, OpStage)
	w := rec.StartChild(root.Context(), OpStageWait)
	w.Finish(ErrNone)
	a := rec.StartChild(root.Context(), OpStageAdmit)
	a.SetBytes(512)
	a.SetFiles(3)
	a.SetHit(true)
	a.Finish(err)
	req := root.Req()
	root.Finish(err)
	return req
}

func TestAnomalousRequestPromotedAndDumped(t *testing.T) {
	ring := obs.NewRingSink(64)
	o := slowOpts()
	o.Dump = ring
	rec := New(o)

	req := serveOne(rec, Context{}, ErrNone) // slow (threshold 1ns) → anomalous

	kept := rec.Kept()
	if len(kept) != 3 {
		t.Fatalf("kept %d spans, want 3 (root + 2 legs)", len(kept))
	}
	var root *Span
	for i := range kept {
		if kept[i].Req != req {
			t.Errorf("kept span has req %d, want %d", kept[i].Req, req)
		}
		if kept[i].Op == OpStage {
			root = &kept[i]
		}
	}
	if root == nil {
		t.Fatal("no root span kept")
	}
	for i := range kept {
		if kept[i].Op != OpStage && kept[i].Parent != root.ID {
			t.Errorf("%s span parented to %d, want root %d", kept[i].Op, kept[i].Parent, root.ID)
		}
		if kept[i].End < kept[i].Start {
			t.Errorf("%s span ends before it starts", kept[i].Op)
		}
	}
	admit := kept[2] // Kept sorts by start: root, wait, admit
	if admit.Op != OpStageAdmit || admit.Bytes != 512 || admit.Files != 3 || !admit.Hit {
		t.Errorf("admit attributes lost: %+v", admit)
	}

	if got := len(ring.Events()); got != 3 {
		t.Fatalf("dump sink got %d events, want 3", got)
	}
	last, ok := ring.Events()[2].(obs.SpanEvent)
	if !ok || last.Op != "stage" {
		t.Fatalf("dump order: last event %+v, want the stage root", ring.Events()[2])
	}

	c := rec.Counters()
	if c.Requests != 1 || c.Kept != 1 || c.Anomalies != 1 || c.Inflight != 0 {
		t.Errorf("counters = %+v, want 1 request, 1 kept, 1 anomaly, 0 inflight", c)
	}
}

func TestErrorRequestIsAnomalous(t *testing.T) {
	rec := New(Options{SlowThreshold: time.Hour, SampleEvery: 1 << 62})
	serveOne(rec, Context{}, ErrBusy)
	if c := rec.Counters(); c.Anomalies != 1 || c.Kept != 1 {
		t.Errorf("counters = %+v, want the errored request promoted", c)
	}
	if got := rec.OpErrors(OpStage); got != 1 {
		t.Errorf("OpErrors(OpStage) = %d, want 1", got)
	}
	kept := rec.Kept()
	if len(kept) == 0 || kept[len(kept)-1].Err != ErrBusy {
		t.Errorf("kept root does not carry ErrBusy: %+v", kept)
	}
}

func TestHeadSamplingKeepsEveryNth(t *testing.T) {
	rec := New(Options{Stripes: 1, PerStripe: 512, SlowThreshold: time.Hour, SampleEvery: 4})
	for i := 0; i < 16; i++ {
		serveOne(rec, Context{}, ErrNone)
	}
	c := rec.Counters()
	if c.Requests != 16 {
		t.Fatalf("requests = %d, want 16", c.Requests)
	}
	// Request IDs run 1..16; IDs 4, 8, 12, 16 sample in.
	if c.Kept != 4 || c.Anomalies != 0 {
		t.Errorf("kept/anomalies = %d/%d, want 4/0", c.Kept, c.Anomalies)
	}
	for _, s := range rec.Kept() {
		if uint64(s.Req)%4 != 0 {
			t.Errorf("kept span from unsampled request %d", s.Req)
		}
	}
}

func TestDisabledPathIsNoOp(t *testing.T) {
	var rec *Recorder // nil = tracing off
	root := rec.StartRequest(Context{}, OpStage)
	if root.OK() {
		t.Fatal("nil recorder produced a live span")
	}
	child := rec.StartChild(root.Context(), OpStageAdmit)
	child.SetBytes(1)
	child.SetFiles(1)
	child.SetHit(true)
	child.AdoptRequest(9)
	child.Finish(ErrBusy)
	root.Finish(ErrNone)
	rec.Retry(OpRPCStage)
	if c := rec.Counters(); c != (Counters{}) {
		t.Errorf("nil counters = %+v, want zero", c)
	}
	if rec.Kept() != nil {
		t.Error("nil recorder kept spans")
	}
	if err := rec.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
	if got := rec.OpLatencyQuantile(OpStage, 0.5); got != 0 {
		t.Errorf("nil quantile = %g, want 0", got)
	}

	// An enabled recorder with no request context is equally silent: legs
	// outside a request trace nothing.
	live := New(slowOpts())
	c2 := live.StartChild(Context{}, OpStageAdmit)
	if c2.OK() {
		t.Fatal("StartChild under the zero Context is live")
	}
	c2.Finish(ErrNone)
	if c := live.Counters(); c.Requests != 0 {
		t.Errorf("zero-context child recorded a request: %+v", c)
	}
}

func TestAdoptRequestRelabelsRoot(t *testing.T) {
	rec := New(slowOpts())
	root := rec.StartRequest(Context{}, OpRPCStage)
	root.AdoptRequest(77)
	root.Finish(ErrNone)
	kept := rec.Kept()
	if len(kept) != 1 || kept[0].Req != 77 {
		t.Fatalf("kept = %+v, want one span with req 77", kept)
	}
}

func TestContextPropagation(t *testing.T) {
	rec := New(slowOpts())
	// A request continuing a wire context keeps the upstream request ID and
	// parents under the upstream span.
	root := rec.StartRequest(Context{Req: 5, Parent: 99}, OpStage)
	if root.Req() != 5 {
		t.Errorf("root req = %d, want wire req 5", root.Req())
	}
	ctx := root.Context()
	if ctx.Req != 5 || ctx.Parent == 0 {
		t.Errorf("root context = %+v, want req 5 and a parent span", ctx)
	}
	root.Finish(ErrNone)
	kept := rec.Kept()
	if len(kept) != 1 || kept[0].Parent != 99 {
		t.Fatalf("root parent = %+v, want wire parent 99", kept)
	}
}

func TestRingOverwriteCountsDropped(t *testing.T) {
	o := slowOpts()
	o.Stripes = 1
	o.PerStripe = 4
	rec := New(o)
	for i := 0; i < 12; i++ {
		serveOne(rec, Context{}, ErrNone) // 3 spans per request, ring holds 4
	}
	if c := rec.Counters(); c.Dropped == 0 {
		t.Error("overflowing a 4-slot kept ring dropped nothing")
	}
}

func TestRetryCounter(t *testing.T) {
	rec := New(slowOpts())
	rec.Retry(OpRPCStage)
	rec.Retry(OpRPCStage)
	reg := obs.NewRegistry()
	rec.ExportTo(reg)
	m, ok := reg.Snapshot().Get(`fbcache_op_retries_total{op="rpc.stage"}`)
	if !ok || m.Value != 2 {
		t.Fatalf("retries metric = %+v (ok=%v), want 2", m, ok)
	}
}

func TestExportTo(t *testing.T) {
	rec := New(slowOpts())
	reg := obs.NewRegistry()
	rec.ExportTo(reg)

	snap := reg.Snapshot()
	// Idle recorder: quantile gauges read 0, never NaN.
	if m, ok := snap.Get(`fbcache_op_latency_p99_seconds{op="stage"}`); !ok || m.Value != 0 {
		t.Fatalf("idle p99 = %+v (ok=%v), want 0", m, ok)
	}

	serveOne(rec, Context{}, ErrBusy)
	snap = reg.Snapshot()
	if m, ok := snap.Get(`fbcache_op_latency_seconds{op="stage"}`); !ok || m.Count != 1 {
		t.Errorf("stage histogram = %+v (ok=%v), want 1 observation", m, ok)
	}
	if m, ok := snap.Get(`fbcache_op_errors_total{op="stage"}`); !ok || m.Value != 1 {
		t.Errorf("stage errors = %+v (ok=%v), want 1", m, ok)
	}
	if m, ok := snap.Get("fbcache_flight_anomalies_total"); !ok || m.Value != 1 {
		t.Errorf("anomalies = %+v (ok=%v), want 1", m, ok)
	}
	if m, ok := snap.Get(`fbcache_op_latency_p50_seconds{op="stage"}`); !ok || m.Value <= 0 {
		t.Errorf("observed p50 = %+v (ok=%v), want > 0", m, ok)
	}
	if got := rec.OpLatencyQuantile(OpStage, 0.5); got <= 0 {
		t.Errorf("OpLatencyQuantile = %g, want > 0", got)
	}
	// ExportTo on nil registers nothing and does not panic.
	var nilRec *Recorder
	nilRec.ExportTo(obs.NewRegistry())
}

func TestFileDumpFlushOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	sink, closer, err := FileDump(path)
	if err != nil {
		t.Fatal(err)
	}
	o := slowOpts()
	o.Dump, o.DumpCloser = sink, closer
	rec := New(o)

	serveOne(rec, Context{}, ErrNone)

	// The dump is buffered: a handful of spans must still be sitting in the
	// bufio buffer, not on disk — this is exactly the tail a shutdown
	// without Close would lose.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("dump hit disk before Close (%d bytes); buffering assumption broken", len(raw))
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("flushed dump has %d lines, want 3", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"kind":"span",`) {
			t.Errorf("dump line is not a span record: %s", l)
		}
	}

	// Close is idempotent, and a recorder outliving its dump keeps working.
	if err := rec.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	serveOne(rec, Context{}, ErrNone)
	if c := rec.Counters(); c.Requests != 2 {
		t.Errorf("post-Close request not recorded: %+v", c)
	}
}

func TestConcurrentRequests(t *testing.T) {
	ring := obs.NewRingSink(1 << 12)
	rec := New(Options{Stripes: 4, PerStripe: 128, SlowThreshold: time.Nanosecond, Dump: ring})
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := ErrNone
				if i%7 == 0 {
					err = ErrBusy
				}
				serveOne(rec, Context{}, err)
			}
		}(w)
	}
	wg.Wait()
	c := rec.Counters()
	if c.Requests != workers*perWorker {
		t.Errorf("requests = %d, want %d", c.Requests, workers*perWorker)
	}
	if c.Inflight != 0 {
		t.Errorf("inflight = %d after all requests finished", c.Inflight)
	}
	if c.Anomalies != c.Requests {
		t.Errorf("anomalies = %d, want every request (threshold 1ns)", c.Anomalies)
	}
	// Kept is bounded by ring capacity; everything retained must be whole
	// spans with sane ordering.
	for _, s := range rec.Kept() {
		if s.Op == OpNone || s.End < s.Start || s.Req == 0 {
			t.Fatalf("corrupt kept span: %+v", s)
		}
	}
}

// BenchmarkSpanDisabled is the CI-gated proof that spans cost nothing when
// off: the full instrumentation shape — request root, two child legs,
// attributes, contexts — against a nil recorder must be 0 allocs/op.
func BenchmarkSpanDisabled(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := rec.StartRequest(Context{}, OpStage)
		w := rec.StartChild(root.Context(), OpStageWait)
		w.Finish(ErrNone)
		a := rec.StartChild(root.Context(), OpStageAdmit)
		a.SetBytes(512)
		a.SetFiles(3)
		a.SetHit(true)
		a.Finish(ErrNone)
		root.Finish(ErrNone)
	}
}

// BenchmarkSpanEnabled is the recording path: healthy unsampled requests
// (ring push only — the steady state under load).
func BenchmarkSpanEnabled(b *testing.B) {
	rec := New(Options{SlowThreshold: time.Hour, SampleEvery: 1 << 62})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := rec.StartRequest(Context{}, OpStage)
		w := rec.StartChild(root.Context(), OpStageWait)
		w.Finish(ErrNone)
		a := rec.StartChild(root.Context(), OpStageAdmit)
		a.SetBytes(512)
		a.SetFiles(3)
		a.SetHit(true)
		a.Finish(ErrNone)
		root.Finish(ErrNone)
	}
}

// BenchmarkSpanPromoted is the sampled path: every request promoted to the
// kept ring (no dump sink attached).
func BenchmarkSpanPromoted(b *testing.B) {
	rec := New(Options{SlowThreshold: time.Hour, SampleEvery: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := rec.StartRequest(Context{}, OpStage)
		a := rec.StartChild(root.Context(), OpStageAdmit)
		a.Finish(ErrNone)
		root.Finish(ErrNone)
	}
}
