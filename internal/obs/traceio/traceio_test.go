package traceio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fbcache/internal/obs"
)

// goldenPath is the checked-in 3-job trace produced by the simulate golden
// test — the shared fixture for the whole offline-analytics stack.
const goldenPath = "../../simulate/testdata/golden_trace.jsonl"

// allKindsEvents returns one fully-populated event of every kind, plus
// zero-heavy variants that exercise the omitempty fields.
func allKindsEvents() []Event {
	return []Event{
		{KindAdmit, obs.AdmitEvent{At: 1, Policy: "optfilebundle", Files: 3, BytesRequested: 700,
			BytesLoaded: 300, FilesLoaded: 2, FilesEvicted: 1, Hit: false, Unserviceable: true}},
		{KindAdmit, obs.AdmitEvent{At: 2, Policy: "landlord", Files: 1, Hit: true}},
		{KindLoad, obs.LoadEvent{At: 3, File: 42, Bytes: 1024}},
		{KindEvict, obs.EvictEvent{At: 4, File: 42, Bytes: 1024}},
		{KindSelectRound, obs.SelectRoundEvent{At: 5, Candidates: 9, Chosen: 4, Files: 12,
			Value: 3.25, Budget: 4096, BudgetUsed: 4000, SingleWinner: true}},
		{KindCreditDecay, obs.CreditDecayEvent{At: 6, Min: 0.125, Files: 7}},
		{KindStage, obs.StageEvent{At: 7.5, Phase: obs.StageStart, Job: 3, Site: "site-1",
			Files: 2, Bytes: 2048}},
		{KindStage, obs.StageEvent{At: 8.25, Phase: obs.StageRetry, Job: 3, Site: "site-1"}},
		{KindStage, obs.StageEvent{At: 9, Phase: obs.StageFailover, Job: 3, Site: "site-2"}},
		{KindStage, obs.StageEvent{At: 10.125, Phase: obs.StageDone, Job: 3, Files: 2, OK: true}},
		{KindJobServed, obs.JobServedEvent{At: 11, Job: 3, Hit: false, ResponseSec: 3.5,
			StagingSec: 2.625, QueuedAt: 7.5, FirstStageAt: 7.75, BytesRequested: 2048, BytesLoaded: 2048}},
		{KindJobServed, obs.JobServedEvent{At: 12, Job: 4, Hit: true, BytesRequested: 10}},
		{KindSpan, obs.SpanEvent{At: 13.5, Req: 7, Span: 21, Parent: 20, Op: "stage.admit",
			DurSec: 0.25, Bytes: 4096, Files: 3, Hit: true, Err: "busy"}},
		{KindSpan, obs.SpanEvent{At: 14, Req: 8, Span: 22, Op: "stage", DurSec: 0.001}},
	}
}

// TestRoundTrip is the core property: Read(Write(events)) == events, for
// every event kind, including awkward float values that must survive the
// JSON round trip exactly.
func TestRoundTrip(t *testing.T) {
	events := allKindsEvents()
	// Awkward floats: values with no short decimal representation.
	events = append(events,
		Event{KindLoad, obs.LoadEvent{At: 0.1 + 0.2, File: 1, Bytes: 1}},
		Event{KindJobServed, obs.JobServedEvent{At: 1.0 / 3.0, Job: 9,
			ResponseSec: 2.0 / 7.0, QueuedAt: 1e-9, FirstStageAt: 1e9, BytesRequested: 1, BytesLoaded: 1}},
	)

	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadAll(bytes.NewReader(buf.Bytes()), Strict)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("strict read skipped %d lines", skipped)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\ngot  %#v\nwant %#v", got, events)
	}

	// Second hop: rewriting the decoded events is byte-identical.
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Write(Read(Write(events))) differs from Write(events)")
	}
}

// TestGoldenDecodesAndRewrites pins traceio against the live sink: the
// checked-in golden trace decodes strictly, and re-encoding reproduces it
// byte for byte.
func TestGoldenDecodesAndRewrites(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := ReadAll(bytes.NewReader(raw), Strict)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("golden trace decoded to zero events")
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Errorf("rewritten golden trace differs:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), raw)
	}
}

func TestStrictRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"truncated json", `{"kind":"load","ev":{"at":1`},
		{"unknown kind", `{"kind":"warp","ev":{}}`},
		{"missing payload", `{"kind":"load"}`},
		{"mistyped field", `{"kind":"load","ev":{"at":"one"}}`},
		{"not json at all", `garbage`},
	}
	good := `{"kind":"load","ev":{"at":1,"file":0,"bytes":4}}` + "\n"
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := good + tc.line + "\n" + good
			_, _, err := ReadAll(strings.NewReader(in), Strict)
			if err == nil {
				t.Fatal("strict decode accepted a malformed line")
			}
			if !strings.Contains(err.Error(), "line 2") {
				t.Errorf("error %q does not name line 2", err)
			}

			events, skipped, err := ReadAll(strings.NewReader(in), Lenient)
			if err != nil {
				t.Fatalf("lenient decode failed: %v", err)
			}
			if skipped != 1 || len(events) != 2 {
				t.Errorf("lenient: %d events, %d skipped; want 2 events, 1 skipped", len(events), skipped)
			}
		})
	}
}

func TestBlankLinesAndEOF(t *testing.T) {
	in := "\n{\"kind\":\"load\",\"ev\":{\"at\":1,\"file\":0,\"bytes\":4}}\n\n\n"
	d := NewDecoder(strings.NewReader(in), Strict)
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after last event, got %v", err)
	}
}

// TestStagePhaseRoundTrip covers all four phases through the named-string
// encoding (an unknown name must fail strict decode).
func TestStagePhaseRoundTrip(t *testing.T) {
	for _, ph := range []obs.StagePhase{obs.StageStart, obs.StageRetry, obs.StageFailover, obs.StageDone} {
		var buf bytes.Buffer
		if err := Write(&buf, []Event{{KindStage, obs.StageEvent{At: 1, Phase: ph, Job: 1}}}); err != nil {
			t.Fatal(err)
		}
		events, _, err := ReadAll(bytes.NewReader(buf.Bytes()), Strict)
		if err != nil {
			t.Fatal(err)
		}
		if got := events[0].Ev.(obs.StageEvent).Phase; got != ph {
			t.Errorf("phase %v round-tripped to %v", ph, got)
		}
	}
	bad := `{"kind":"stage","ev":{"at":1,"phase":"sideways","job":1}}`
	if _, _, err := ReadAll(strings.NewReader(bad), Strict); err == nil {
		t.Error("unknown stage phase accepted")
	}
}

func TestDispatchFeedsStatsSink(t *testing.T) {
	sink := obs.NewStatsSink()
	for _, e := range allKindsEvents() {
		if err := Dispatch(sink, e); err != nil {
			t.Fatal(err)
		}
	}
	st := sink.Stats()
	if st.Admits != 2 || st.Hits != 1 || st.Unserviced != 1 {
		t.Errorf("admit counts = %d/%d/%d, want 2/1/1", st.Admits, st.Hits, st.Unserviced)
	}
	if st.Loads != 1 || st.Evicts != 1 || st.JobsServed != 2 {
		t.Errorf("loads/evicts/jobs = %d/%d/%d, want 1/1/2", st.Loads, st.Evicts, st.JobsServed)
	}
	if st.StageStarts != 1 || st.StageRetries != 1 || st.Failovers != 1 || st.StageDones != 1 {
		t.Errorf("stage phases = %d/%d/%d/%d, want 1 each",
			st.StageStarts, st.StageRetries, st.Failovers, st.StageDones)
	}
	if st.Spans != 2 || st.SpanErrors != 1 {
		t.Errorf("spans/span_errors = %d/%d, want 2/1", st.Spans, st.SpanErrors)
	}
	if err := Dispatch(sink, Event{Kind: "bogus", Ev: 42}); err == nil {
		t.Error("Dispatch accepted a non-event payload")
	}
}

func TestKindOf(t *testing.T) {
	for _, e := range allKindsEvents() {
		kind, ok := KindOf(e.Ev)
		if !ok || kind != e.Kind {
			t.Errorf("KindOf(%T) = %q,%v; want %q,true", e.Ev, kind, ok, e.Kind)
		}
	}
	if _, ok := KindOf("nope"); ok {
		t.Error("KindOf accepted a string")
	}
}

// FuzzTraceDecode asserts the reader never panics on corrupt JSONL, in
// either mode, and that strict-accepted input round-trips through Write.
// The checked-in corpus (testdata/fuzz/FuzzTraceDecode) seeds it with lines
// from the golden trace and mutations of them.
func FuzzTraceDecode(f *testing.F) {
	if raw, err := os.ReadFile(filepath.FromSlash(goldenPath)); err == nil {
		f.Add(raw)
		for _, line := range bytes.Split(raw, []byte("\n")) {
			if len(line) > 0 {
				f.Add(line)
			}
		}
	}
	f.Add([]byte(`{"kind":"stage","ev":{"phase":"retry"}}`))
	f.Add([]byte(`{"kind":"load","ev":{"at":1e309}}`))
	f.Add([]byte("{\"kind\":\"load\"\x00,\"ev\":{}}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, _, err := ReadAll(bytes.NewReader(data), Strict)
		if _, _, lerr := ReadAll(bytes.NewReader(data), Lenient); lerr != nil && err == nil {
			t.Fatalf("lenient failed (%v) where strict succeeded", lerr)
		}
		if err != nil {
			return
		}
		// Anything the strict reader accepts must re-encode cleanly and
		// decode back to the same events.
		var buf bytes.Buffer
		if werr := Write(&buf, events); werr != nil {
			t.Fatalf("Write failed on strict-accepted events: %v", werr)
		}
		again, _, rerr := ReadAll(bytes.NewReader(buf.Bytes()), Strict)
		if rerr != nil {
			t.Fatalf("re-decode failed: %v", rerr)
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("round trip diverged:\n%#v\n%#v", events, again)
		}
	})
}
