// Package traceio reads and re-writes the JSONL event traces produced by
// obs.JSONLSink (cachesim -trace-out, srmbench -trace-out, the golden trace
// under internal/simulate/testdata): a streaming decoder that turns each
// {"kind":...,"ev":...} line back into the typed obs event it came from, and
// a writer that re-encodes events byte-identically to the live sink, so
// Read∘Write is the identity on well-formed traces.
//
// Decoding is streaming — Decoder.Next returns one event at a time without
// holding the trace in memory — and comes in two modes. Strict fails on the
// first malformed line (truncated JSON, unknown kind, mistyped field) with
// its line number; Lenient skips such lines and counts them, for salvaging
// analytics from a trace whose writer crashed mid-line. The offline
// analytics over these events live in internal/obs/analyze and are driven
// by cmd/fbtrace.
package traceio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"fbcache/internal/obs"
)

// The kind discriminators, exactly as obs.JSONLSink writes them.
const (
	KindAdmit       = "admit"
	KindLoad        = "load"
	KindEvict       = "evict"
	KindSelectRound = "select_round"
	KindCreditDecay = "credit_decay"
	KindStage       = "stage"
	KindJobServed   = "job_served"
	KindReplicaPlan = "replica_plan"
	KindSpan        = "span"
)

// Event is one decoded trace line: the kind discriminator plus the typed
// payload — one of the nine obs event structs, held by value.
type Event struct {
	Kind string
	Ev   any
}

// Mode selects how the decoder treats malformed lines.
type Mode int

const (
	// Strict fails on the first malformed line, reporting its line number.
	Strict Mode = iota
	// Lenient skips malformed lines and counts them (Decoder.Skipped).
	Lenient
)

// maxLine bounds one trace line; a line longer than this is malformed by
// construction (the longest legitimate event is well under 1 KiB).
const maxLine = 1 << 20

func decodeAs[T any](raw json.RawMessage) (any, error) {
	var e T
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, err
	}
	return e, nil
}

var decoders = map[string]func(json.RawMessage) (any, error){
	KindAdmit:       decodeAs[obs.AdmitEvent],
	KindLoad:        decodeAs[obs.LoadEvent],
	KindEvict:       decodeAs[obs.EvictEvent],
	KindSelectRound: decodeAs[obs.SelectRoundEvent],
	KindCreditDecay: decodeAs[obs.CreditDecayEvent],
	KindStage:       decodeAs[obs.StageEvent],
	KindJobServed:   decodeAs[obs.JobServedEvent],
	KindReplicaPlan: decodeAs[obs.ReplicaPlanEvent],
	KindSpan:        decodeAs[obs.SpanEvent],
}

// KindOf reports the kind discriminator for a typed event payload, and
// whether ev is one of the nine trace event types.
func KindOf(ev any) (string, bool) {
	switch ev.(type) {
	case obs.AdmitEvent:
		return KindAdmit, true
	case obs.LoadEvent:
		return KindLoad, true
	case obs.EvictEvent:
		return KindEvict, true
	case obs.SelectRoundEvent:
		return KindSelectRound, true
	case obs.CreditDecayEvent:
		return KindCreditDecay, true
	case obs.StageEvent:
		return KindStage, true
	case obs.JobServedEvent:
		return KindJobServed, true
	case obs.ReplicaPlanEvent:
		return KindReplicaPlan, true
	case obs.SpanEvent:
		return KindSpan, true
	}
	return "", false
}

// Decoder streams events out of a JSONL trace.
type Decoder struct {
	sc      *bufio.Scanner
	mode    Mode
	line    int
	skipped int
}

// NewDecoder wraps r. The caller owns r's lifecycle.
func NewDecoder(r io.Reader, mode Mode) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	return &Decoder{sc: sc, mode: mode}
}

// Next returns the next event, or io.EOF at the end of the trace. Blank
// lines are skipped in both modes (a trailing newline is not an error). In
// Strict mode any malformed line aborts with an error naming it; in Lenient
// mode malformed lines are counted and skipped — only I/O errors (including
// a line exceeding the 1 MiB bound, which the underlying scanner cannot
// recover from) are returned.
func (d *Decoder) Next() (Event, error) {
	for d.sc.Scan() {
		d.line++
		line := bytes.TrimSpace(d.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := decodeLine(line)
		if err != nil {
			if d.mode == Lenient {
				d.skipped++
				continue
			}
			return Event{}, fmt.Errorf("traceio: line %d: %w", d.line, err)
		}
		return ev, nil
	}
	if err := d.sc.Err(); err != nil {
		return Event{}, fmt.Errorf("traceio: line %d: %w", d.line+1, err)
	}
	return Event{}, io.EOF
}

// Line reports the number of lines consumed so far (1-based after the first
// Next), for error attribution by callers doing their own validation.
func (d *Decoder) Line() int { return d.line }

// Skipped reports how many malformed lines a Lenient decoder has dropped.
func (d *Decoder) Skipped() int { return d.skipped }

func decodeLine(line []byte) (Event, error) {
	var rec struct {
		Kind string          `json:"kind"`
		Ev   json.RawMessage `json:"ev"`
	}
	if err := json.Unmarshal(line, &rec); err != nil {
		return Event{}, err
	}
	dec, ok := decoders[rec.Kind]
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", rec.Kind)
	}
	if len(rec.Ev) == 0 {
		return Event{}, fmt.Errorf("event kind %q has no payload", rec.Kind)
	}
	ev, err := dec(rec.Ev)
	if err != nil {
		return Event{}, fmt.Errorf("decoding %q payload: %w", rec.Kind, err)
	}
	return Event{Kind: rec.Kind, Ev: ev}, nil
}

// ReadAll decodes a whole trace. In Lenient mode the skipped-line count is
// also returned; in Strict mode it is always zero.
func ReadAll(r io.Reader, mode Mode) (events []Event, skipped int, err error) {
	d := NewDecoder(r, mode)
	for {
		ev, err := d.Next()
		if err == io.EOF {
			return events, d.skipped, nil
		}
		if err != nil {
			return events, d.skipped, err
		}
		events = append(events, ev)
	}
}

// ReadFile is ReadAll over a file.
func ReadFile(path string, mode Mode) (events []Event, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		_ = f.Close() // read-only handle
	}()
	return ReadAll(f, mode)
}

// Dispatch replays e into t, calling the Tracer method matching the payload
// type — the bridge from decoded traces back to live consumers (StatsSink
// for counting, JSONLSink for re-encoding, the analyze reducers).
func Dispatch(t obs.Tracer, e Event) error {
	switch ev := e.Ev.(type) {
	case obs.AdmitEvent:
		t.Admit(ev)
	case obs.LoadEvent:
		t.Load(ev)
	case obs.EvictEvent:
		t.Evict(ev)
	case obs.SelectRoundEvent:
		t.SelectRound(ev)
	case obs.CreditDecayEvent:
		t.CreditDecay(ev)
	case obs.StageEvent:
		t.Stage(ev)
	case obs.JobServedEvent:
		t.JobServed(ev)
	case obs.ReplicaPlanEvent:
		t.ReplicaPlan(ev)
	case obs.SpanEvent:
		t.Span(ev)
	default:
		return fmt.Errorf("traceio: cannot dispatch payload of type %T", e.Ev)
	}
	return nil
}

// Write re-encodes events through an obs.JSONLSink, so the output is
// byte-identical to what a live sink would have produced for the same event
// sequence: ReadAll(Write(events)) round-trips and diffing a rewritten
// trace against its source is a no-op.
func Write(w io.Writer, events []Event) error {
	sink := obs.NewJSONLSink(w)
	for i, e := range events {
		if err := Dispatch(sink, e); err != nil {
			return fmt.Errorf("traceio: event %d: %w", i, err)
		}
	}
	return sink.Err()
}
