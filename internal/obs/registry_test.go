package obs

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("obs_test_total", "test counter")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("obs_test_gauge", "test gauge")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	// 0.5 is exactly representable, so the CAS loop sums exactly.
	if got, want := g.Value(), float64(workers*per)*0.5; got != want {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative counter add")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("obs_test_seconds", "edges", []float64{1, 2, 5})
	// Upper bounds are inclusive (Prometheus le semantics).
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4.9, 5, 5.1, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	m, ok := snap.Get("obs_test_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCum := []int64{2, 4, 6, 8} // ≤1: {0.5,1}; ≤2: +{1.0000001,2}; ≤5: +{4.9,5}; +Inf: +{5.1,100}
	if len(m.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(m.Buckets), len(wantCum))
	}
	for i, b := range m.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] (le=%g) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(m.Buckets[len(m.Buckets)-1].UpperBound, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", m.Buckets[len(m.Buckets)-1].UpperBound)
	}
	if m.Count != 8 {
		t.Errorf("count = %d, want 8", m.Count)
	}
	if want := 0.5 + 1 + 1.0000001 + 2 + 4.9 + 5 + 5.1 + 100; m.Sum != want {
		t.Errorf("sum = %g, want %g", m.Sum, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("obs_test_conc", "concurrent", []float64{10})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%2) * 20) // half below 10, half above
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	m, _ := r.Snapshot().Get("obs_test_conc")
	if m.Buckets[0].Count != workers*per/2 || m.Buckets[1].Count != workers*per {
		t.Fatalf("cumulative buckets = %+v", m.Buckets)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zeta_total", "")
	r.NewGauge("alpha", "")
	r.NewHistogram("mid_seconds", "", []float64{1})
	a, b := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("back-to-back snapshots differ")
	}
	names := make([]string, len(a.Metrics))
	for i, m := range a.Metrics {
		names[i] = m.Name
	}
	want := []string{"alpha", "mid_seconds", "zeta_total"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("order = %v, want %v", names, want)
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", []float64{1, 10})
	c.Add(3)
	g.Set(7)
	h.Observe(0.5)
	prev := r.Snapshot()
	c.Add(2)
	g.Set(4)
	h.Observe(5)
	h.Observe(0.1)
	d := r.Snapshot().Delta(prev)

	if m, _ := d.Get("c_total"); m.Value != 2 {
		t.Errorf("counter delta = %g, want 2", m.Value)
	}
	if m, _ := d.Get("g"); m.Value != 4 {
		t.Errorf("gauge in delta = %g, want current value 4", m.Value)
	}
	m, _ := d.Get("h_seconds")
	if m.Count != 2 || m.Sum != 5.1 {
		t.Errorf("histogram delta count=%d sum=%g, want 2 and 5.1", m.Count, m.Sum)
	}
	wantCum := []int64{1, 2, 2} // new obs: 0.1 (≤1), 5 (≤10)
	for i, b := range m.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("delta bucket[%d] = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	// Delta must not mutate the source snapshots' bucket slices.
	if m2, _ := r.Snapshot().Get("h_seconds"); m2.Buckets[2].Count != 3 {
		t.Errorf("source snapshot mutated: %+v", m2.Buckets)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.CounterFunc("fn_total", "", func() float64 { return n })
	r.GaugeFunc("fn_gauge", "", func() float64 { return -n })
	n = 5
	s := r.Snapshot()
	if m, _ := s.Get("fn_total"); m.Value != 5 {
		t.Errorf("CounterFunc = %g, want 5", m.Value)
	}
	if m, _ := s.Get("fn_gauge"); m.Value != -5 {
		t.Errorf("GaugeFunc = %g, want -5", m.Value)
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"duplicate", func(r *Registry) {
			r.NewCounter("dup_total", "")
			r.NewCounter("dup_total", "")
		}},
		{"empty name", func(r *Registry) { r.NewCounter("", "") }},
		{"bad char", func(r *Registry) { r.NewCounter("has space", "") }},
		{"leading digit", func(r *Registry) { r.NewCounter("9lives", "") }},
		{"malformed labels", func(r *Registry) { r.NewCounter(`x{a="b"`, "") }},
		{"empty buckets", func(r *Registry) { r.NewHistogram("h", "", nil) }},
		{"unsorted buckets", func(r *Registry) { r.NewHistogram("h", "", []float64{5, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestLabeledNamesAccepted(t *testing.T) {
	r := NewRegistry()
	r.NewGauge(`fbcache_info{policy="opt"}`, "info")
	if _, ok := r.Snapshot().Get(`fbcache_info{policy="opt"}`); !ok {
		t.Fatal("labeled metric missing from snapshot")
	}
}

func TestBucketHelpers(t *testing.T) {
	if got, want := LinearBuckets(1, 2, 3), []float64{1, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("LinearBuckets = %v, want %v", got, want)
	}
	if got, want := ExpBuckets(1, 10, 3), []float64{1, 10, 100}; !reflect.DeepEqual(got, want) {
		t.Errorf("ExpBuckets = %v, want %v", got, want)
	}
	if b := DefSecondsBuckets(); !sortedFloats(b) {
		t.Errorf("DefSecondsBuckets not sorted: %v", b)
	}
}

func sortedFloats(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			return false
		}
	}
	return true
}

func TestNewExpHistogram(t *testing.T) {
	h := NewExpHistogram(0.001, 2, 10) // 1ms .. 512ms
	want := ExpBuckets(0.001, 2, 10)
	if !reflect.DeepEqual(h.bounds, want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}

	// Quantile interpolation works over the log-scale layout: 100
	// observations at exactly the k-th bound put the k/100-quantile on that
	// bound (the estimator is exact on bucket edges).
	for i := 0; i < 100; i++ {
		h.Observe(want[i%len(want)])
	}
	if got := h.Quantile(1); got != want[len(want)-1] {
		t.Errorf("Quantile(1) = %g, want %g", got, want[len(want)-1])
	}
	if got := h.Quantile(0.1); got != want[0] {
		t.Errorf("Quantile(0.1) = %g, want %g", got, want[0])
	}
	// Mid-bucket values interpolate between adjacent bounds.
	if got := h.Quantile(0.15); !(got > want[0] && got < want[1]) {
		t.Errorf("Quantile(0.15) = %g, want inside (%g, %g)", got, want[0], want[1])
	}

	// The registered variant shows up in snapshots with the same layout.
	r := NewRegistry()
	rh := r.NewExpHistogram("exp_seconds", "help", 0.001, 2, 10)
	rh.Observe(0.003)
	m, ok := r.Snapshot().Get("exp_seconds")
	if !ok || m.Kind != KindHistogram {
		t.Fatalf("exp_seconds missing or wrong kind: %+v", m)
	}
	if len(m.Buckets) != 11 { // 10 bounds + implicit +Inf
		t.Errorf("snapshot has %d buckets, want 11", len(m.Buckets))
	}
	if m.Count != 1 || m.Sum != 0.003 {
		t.Errorf("count/sum = %d/%g, want 1/0.003", m.Count, m.Sum)
	}
}

func TestNewExpHistogramPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero start", func() { NewExpHistogram(0, 2, 4) }},
		{"negative start", func() { NewExpHistogram(-1, 2, 4) }},
		{"nan start", func() { NewExpHistogram(math.NaN(), 2, 4) }},
		{"factor one", func() { NewExpHistogram(1, 1, 4) }},
		{"shrinking factor", func() { NewExpHistogram(1, 0.5, 4) }},
		{"zero buckets", func() { NewExpHistogram(1, 2, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
