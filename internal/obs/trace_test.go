package obs

import (
	"strings"
	"sync"
	"testing"
)

// emitOneOfEach drives every Tracer method once with fixed payloads.
func emitOneOfEach(t Tracer) {
	t.Admit(AdmitEvent{At: 1, Policy: "opt", Files: 2, BytesRequested: 30, BytesLoaded: 10, FilesLoaded: 1, Hit: false})
	t.Load(LoadEvent{At: 1, File: 1, Bytes: 10})
	t.Evict(EvictEvent{At: 1, File: 0, Bytes: 5})
	t.SelectRound(SelectRoundEvent{At: 1, Candidates: 4, Chosen: 2, Files: 3, Value: 1.5, Budget: 100, BudgetUsed: 60})
	t.CreditDecay(CreditDecayEvent{At: 2, Min: 0.25, Files: 3})
	t.Stage(StageEvent{At: 3, Phase: StageStart, Job: 0, Site: "site-a", Files: 2, Bytes: 30})
	t.Stage(StageEvent{At: 4, Phase: StageRetry, Job: 0, Site: "site-a"})
	t.Stage(StageEvent{At: 5, Phase: StageFailover, Job: 0, Site: "site-b"})
	t.Stage(StageEvent{At: 6, Phase: StageDone, Job: 0, Site: "site-b", OK: true})
	t.JobServed(JobServedEvent{At: 6, Job: 0, Hit: false, BytesRequested: 30, BytesLoaded: 10})
}

func TestJSONLSinkDeterministic(t *testing.T) {
	var a, b strings.Builder
	sa, sb := NewJSONLSink(&a), NewJSONLSink(&b)
	emitOneOfEach(sa)
	emitOneOfEach(sb)
	if sa.Err() != nil || sb.Err() != nil {
		t.Fatalf("sink errors: %v, %v", sa.Err(), sb.Err())
	}
	if a.String() != b.String() {
		t.Fatal("identical event sequences produced different JSONL")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10", len(lines))
	}
	for i, want := range []string{
		`"kind":"admit"`, `"kind":"load"`, `"kind":"evict"`, `"kind":"select_round"`,
		`"kind":"credit_decay"`, `"kind":"stage"`, `"kind":"stage"`, `"kind":"stage"`,
		`"kind":"stage"`, `"kind":"job_served"`,
	} {
		if !strings.HasPrefix(lines[i], `{`+want) {
			t.Errorf("line %d = %q, want prefix {%s", i, lines[i], want)
		}
	}
	// StagePhase marshals as its name, not a number.
	if !strings.Contains(lines[7], `"phase":"failover"`) {
		t.Errorf("stage line lacks named phase: %q", lines[7])
	}
}

func TestRingSink(t *testing.T) {
	r := NewRingSink(3)
	for i := 0; i < 5; i++ {
		r.Load(LoadEvent{At: float64(i), File: 7, Bytes: 1})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for i, want := range []float64{2, 3, 4} {
		if got := evs[i].(LoadEvent).At; got != want {
			t.Errorf("event[%d].At = %g, want %g (oldest-first)", i, got, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestStatsSink(t *testing.T) {
	s := NewStatsSink()
	emitOneOfEach(s)
	s.Admit(AdmitEvent{Hit: true})
	s.Admit(AdmitEvent{Unserviceable: true})
	st := s.Stats()
	want := TraceStats{
		Admits: 3, Hits: 1, Unserviced: 1,
		Loads: 1, Evicts: 1, SelectRounds: 1, CreditDecays: 1,
		StageStarts: 1, StageRetries: 1, Failovers: 1, StageDones: 1,
		JobsServed: 1, BytesLoaded: 10, BytesEvicted: 5,
	}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	a, b := NewStatsSink(), NewStatsSink()
	m := MultiTracer{a, b, NopTracer{}}
	emitOneOfEach(m)
	if a.Stats() != b.Stats() {
		t.Fatal("fan-out delivered different streams")
	}
	if a.Stats().Admits != 1 {
		t.Fatalf("admits = %d, want 1", a.Stats().Admits)
	}
}

func TestSinksConcurrent(t *testing.T) {
	var sb strings.Builder
	sinks := MultiTracer{NewJSONLSink(&sb), NewRingSink(16), NewStatsSink()}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				emitOneOfEach(sinks)
			}
		}()
	}
	wg.Wait()
	if got := sinks[2].(*StatsSink).Stats().Admits; got != 400 {
		t.Fatalf("admits = %d, want 400", got)
	}
}

func TestStagePhaseString(t *testing.T) {
	for phase, want := range map[StagePhase]string{
		StageStart: "start", StageRetry: "retry", StageFailover: "failover",
		StageDone: "done", StagePhase(99): "unknown",
	} {
		if phase.String() != want {
			t.Errorf("StagePhase(%d).String() = %q, want %q", phase, phase.String(), want)
		}
	}
}
