package obs

import (
	"math"
	"testing"
)

// TestQuantileExactOnBoundAlignedValues pins the estimator against
// distributions whose observations sit exactly on bucket bounds, where
// linear interpolation must reproduce the true quantile with no error.
func TestQuantileExactOnBoundAlignedValues(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		observe []float64
		q       float64
		want    float64
	}{
		{
			name:    "uniform 1..10, median",
			bounds:  LinearBuckets(1, 1, 10),
			observe: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			q:       0.5,
			want:    5,
		},
		{
			name:    "uniform 1..10, p90",
			bounds:  LinearBuckets(1, 1, 10),
			observe: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			q:       0.9,
			want:    9,
		},
		{
			name:    "uniform 1..10, p100 hits the top bound",
			bounds:  LinearBuckets(1, 1, 10),
			observe: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			q:       1,
			want:    10,
		},
		{
			name:    "all mass in one bucket",
			bounds:  []float64{1, 2, 4},
			observe: []float64{2, 2, 2, 2},
			q:       0.99,
			// Rank 3.96 of 4 lands in the (1,2] bucket holding all four
			// observations: 1 + (2-1)*3.96/4.
			want: 1.99,
		},
		{
			name:    "interpolation inside first bucket from lower edge 0",
			bounds:  []float64{10, 20},
			observe: []float64{5, 5, 5, 5},
			q:       0.5,
			// Two of four ranks inside (0,10]: 0 + 10*2/4.
			want: 5,
		},
		{
			name:    "overflow rank clamps to highest finite bound",
			bounds:  []float64{1, 2},
			observe: []float64{100, 200, 300},
			q:       0.5,
			want:    2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			h := reg.NewHistogram("q_test", "", tc.bounds)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			m, ok := reg.Snapshot().Get("q_test")
			if !ok {
				t.Fatal("histogram missing from snapshot")
			}
			got := m.Quantile(tc.q)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
			}
			// The live-histogram path must agree with the snapshot path.
			if live := h.Quantile(tc.q); math.Abs(live-got) > 1e-9 {
				t.Errorf("Histogram.Quantile(%g) = %g, snapshot says %g", tc.q, live, got)
			}
		})
	}
}

func TestQuantileDegenerateInputs(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("empty", "", []float64{1, 2})
	m, _ := reg.Snapshot().Get("empty")
	if got := m.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %g, want NaN", got)
	}
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty live histogram quantile = %g, want NaN", got)
	}

	c := Metric{Kind: KindCounter, Value: 7}
	if got := c.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("counter quantile = %g, want NaN", got)
	}

	h.Observe(1.5)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %g, want NaN", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := h.Quantile(-1); math.IsNaN(got) || got < 0 {
		t.Errorf("Quantile(-1) = %g, want a clamped finite value", got)
	}
	if got := h.Quantile(2); math.Abs(got-2) > 1e-9 {
		t.Errorf("Quantile(2) = %g, want top finite bound 2", got)
	}
}

func TestP50P90P99(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("trio", "", LinearBuckets(1, 1, 100))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	m, _ := reg.Snapshot().Get("trio")
	p50, p90, p99 := m.P50P90P99()
	for _, c := range []struct{ got, want float64 }{{p50, 50}, {p90, 90}, {p99, 99}} {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Errorf("quantile = %g, want %g", c.got, c.want)
		}
	}
}
