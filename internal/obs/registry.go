package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric.
type Kind uint8

const (
	// KindCounter is a monotonically non-decreasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution of observations.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its lowercase name ("counter", "gauge",
// "histogram") so /debug/vars output is self-describing.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (k *Kind) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"counter"`:
		*k = KindCounter
	case `"gauge"`:
		*k = KindGauge
	case `"histogram"`:
		*k = KindHistogram
	default:
		return fmt.Errorf("obs: unknown metric kind %s", data)
	}
	return nil
}

// Counter is a monotonically non-decreasing int64. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas panic — a counter only goes up.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter decremented by %d", n))
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can move in both directions. Safe for concurrent
// use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bucket layouts are chosen at
// registration and never change, so snapshots from the same registry are
// always comparable. Safe for concurrent use.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefSecondsBuckets is a general-purpose layout for durations in seconds
// (sim-time or otherwise), 5ms to 100s.
func DefSecondsBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 25, 50, 100}
}

// metric is one registered instrument.
type metric struct {
	name string // may carry a {label="value",...} suffix
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // func-backed counter or gauge; read at snapshot
}

// Registry holds named instruments and produces deterministic snapshots.
// Registration typically happens once at setup; instruments themselves are
// lock-free. The registry never reads the wall clock.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric //fbvet:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register validates and stores m, panicking on duplicate or invalid names:
// instrument registration is setup code, and a misnamed metric is a
// programming error best caught at boot, not at scrape time.
func (r *Registry) register(m *metric) {
	if err := checkName(m.name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.metrics[m.name] = m
}

// checkName enforces the Prometheus exposition grammar: a metric family
// [a-zA-Z_:][a-zA-Z0-9_:]* optionally followed by a {label="value",...}
// block (emitted verbatim).
func checkName(name string) error {
	family, labels := splitName(name)
	if family == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range family {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	if labels != "" && (labels[0] != '{' || labels[len(labels)-1] != '}') {
		return fmt.Errorf("malformed label block in %q", name)
	}
	return nil
}

// splitName separates a registered name into family and label block.
func splitName(name string) (family, labels string) {
	for i, c := range name {
		if c == '{' {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// NewHistogram returns an unregistered histogram with the given upper
// bounds (sorted ascending; an implicit +Inf bucket is appended) — for
// components that observe before, or without, a registry existing (e.g.
// internal/srm records request sizes from Stage and only exposes the
// distribution once NewRegistry attaches). Expose it later with
// Registry.RegisterHistogram. Panics on an empty or unsorted layout.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds not sorted")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// NewHistogram registers and returns a histogram with the given upper
// bounds (sorted ascending; an implicit +Inf bucket is appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// NewExpHistogram returns an unregistered histogram with n exponential
// bucket bounds start, start*factor, start*factor², ... — the log-scale
// layout latency distributions need, where fixed-width buckets would either
// blur the fast path or truncate the tail. Quantile interpolation (see
// Metric.Quantile) has constant relative error ≤ factor-1 on such a layout.
// Panics unless start > 0, factor > 1 and n ≥ 1, which together guarantee
// the strictly-increasing bounds NewHistogram requires.
func NewExpHistogram(start, factor float64, n int) *Histogram {
	if !(start > 0) {
		panic(fmt.Sprintf("obs: exp histogram start %v, need > 0", start))
	}
	if !(factor > 1) {
		panic(fmt.Sprintf("obs: exp histogram factor %v, need > 1", factor))
	}
	if n < 1 {
		panic(fmt.Sprintf("obs: exp histogram needs n >= 1 buckets, got %d", n))
	}
	return NewHistogram(ExpBuckets(start, factor, n))
}

// NewExpHistogram registers and returns an exponential-bucket histogram
// (see the package-level NewExpHistogram for the layout and validation).
func (r *Registry) NewExpHistogram(name, help string, start, factor float64, n int) *Histogram {
	h := NewExpHistogram(start, factor, n)
	r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// RegisterHistogram exposes an existing histogram (see the package-level
// NewHistogram) under name. The registry holds a reference, not a copy:
// observations made after registration show up in later snapshots.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	if h == nil {
		panic(fmt.Sprintf("obs: RegisterHistogram(%q) with nil histogram", name))
	}
	r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time. fn must be monotone and safe for concurrent calls; use it to expose
// counters that live behind another component's lock (e.g. srm.Snapshot).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: KindCounter, fn: fn})
}

// GaugeFunc registers a gauge read from fn at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: KindGauge, fn: fn})
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf for the last.
	UpperBound float64 `json:"-"`
	// Count is the cumulative number of observations ≤ UpperBound.
	Count int64 `json:"count"`
}

// bucketJSON carries the bound as a string — encoding/json rejects the +Inf
// float the last bucket always holds.
type bucketJSON struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{UpperBound: formatFloat(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var bj bucketJSON
	if err := json.Unmarshal(data, &bj); err != nil {
		return err
	}
	ub, err := strconv.ParseFloat(bj.UpperBound, 64)
	if err != nil {
		return err
	}
	b.UpperBound = ub
	b.Count = bj.Count
	return nil
}

// Metric is one instrument's state at snapshot time.
type Metric struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Kind Kind   `json:"kind"`
	// Value carries counters (as float64) and gauges.
	Value float64 `json:"value"`
	// Buckets, Sum and Count carry histograms.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name. Two snapshots of the same registry always list the same metrics in
// the same order, so diffs and golden tests are stable.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	metrics := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		metrics = append(metrics, m)
	}
	r.mu.RUnlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	out := Snapshot{Metrics: make([]Metric, 0, len(metrics))}
	for _, m := range metrics {
		s := Metric{Name: m.name, Help: m.help, Kind: m.kind}
		switch {
		case m.fn != nil:
			s.Value = m.fn()
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		case m.hist != nil:
			h := m.hist
			s.Sum = h.Sum()
			s.Count = h.Count()
			s.Buckets = make([]Bucket, len(h.bounds)+1)
			cum := int64(0)
			for i := range h.counts {
				cum += h.counts[i].Load()
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				s.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
			}
		}
		out.Metrics = append(out.Metrics, s)
	}
	return out
}

// Get finds a metric by name.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return Metric{}, false
}

// Delta returns s with every counter and histogram reduced by its value in
// prev (gauges pass through unchanged): the activity between the two
// snapshots. Metrics absent from prev are returned as-is.
//
// Counter resets are handled the way Prometheus's rate() handles them: if a
// counter's value (or a histogram's observation count) went backwards —
// prev was taken from a since-restarted component, or from a different
// registry that happened to share names — the metric is returned as-is, the
// activity since the reset, rather than as a nonsense negative delta.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{Metrics: make([]Metric, len(s.Metrics))}
	copy(out.Metrics, s.Metrics)
	for i := range out.Metrics {
		m := &out.Metrics[i]
		p, ok := prev.Get(m.Name)
		if !ok || m.Kind == KindGauge {
			continue
		}
		if m.Kind == KindCounter && m.Value < p.Value {
			continue // reset: report the raw post-reset value
		}
		if m.Kind == KindHistogram && m.Count < p.Count {
			continue // reset: report the raw post-reset distribution
		}
		m.Value -= p.Value
		if m.Kind == KindHistogram {
			m.Sum -= p.Sum
			m.Count -= p.Count
			m.Buckets = append([]Bucket(nil), m.Buckets...)
			for j := range m.Buckets {
				if j < len(p.Buckets) {
					m.Buckets[j].Count -= p.Buckets[j].Count
				}
			}
		}
	}
	return out
}
