package bitmapindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fbcache/internal/bundle"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130) // spans three words
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len=%d count=%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d", b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Errorf("Get(%d) = false", i)
		}
	}
	if b.Get(1) || b.Get(128) || b.Get(-1) || b.Get(130) {
		t.Error("phantom bits")
	}
}

func TestBitmapSetPanics(t *testing.T) {
	b := NewBitmap(8)
	for _, i := range []int{-1, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			b.Set(i)
		}()
	}
}

func TestBitmapAlgebra(t *testing.T) {
	a, b := NewBitmap(100), NewBitmap(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i) // evens
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i) // multiples of 3
	}
	and := a.And(b) // multiples of 6
	if got := and.Count(); got != 17 {
		t.Errorf("And count = %d, want 17", got)
	}
	or := a.Or(b)
	// |evens| + |x3| - |x6| = 50 + 34 - 17 = 67
	if got := or.Count(); got != 67 {
		t.Errorf("Or count = %d, want 67", got)
	}
	// In-place variants agree.
	c := a.Clone()
	c.AndWith(b)
	if c.Count() != and.Count() {
		t.Error("AndWith disagrees with And")
	}
	d := a.Clone()
	d.OrWith(b)
	if d.Count() != or.Count() {
		t.Error("OrWith disagrees with Or")
	}
	// Originals untouched.
	if a.Count() != 50 || b.Count() != 34 {
		t.Error("And/Or mutated operands")
	}
}

func TestBitmapLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBitmap(10).And(NewBitmap(11))
}

func TestBitmapSizeBytesTracksDensity(t *testing.T) {
	sparse := NewBitmap(64 * 100)
	sparse.Set(0)
	dense := NewBitmap(64 * 100)
	for i := 0; i < 64*100; i += 2 {
		dense.Set(i)
	}
	if sparse.SizeBytes() >= dense.SizeBytes() {
		t.Errorf("sparse %d >= dense %d", sparse.SizeBytes(), dense.SizeBytes())
	}
	if NewBitmap(64).SizeBytes() <= 0 {
		t.Error("empty bitmap has non-positive size")
	}
}

func buildIndex(t testing.TB, rows int) (*Index, *bundle.Catalog, []float64, []float64) {
	t.Helper()
	cat := bundle.NewCatalog()
	ix := New(rows, cat)
	energy := ix.AddAttribute("energy", 0, 100, 10)
	pt := ix.AddAttribute("pt", 0, 50, 5)
	rng := rand.New(rand.NewSource(8))
	evals := make([]float64, rows)
	pvals := make([]float64, rows)
	for r := 0; r < rows; r++ {
		evals[r] = rng.Float64() * 100
		pvals[r] = rng.Float64() * 50
		ix.SetValue(r, energy, evals[r])
		ix.SetValue(r, pt, pvals[r])
	}
	ix.Finalize()
	return ix, cat, evals, pvals
}

func TestIndexQueryMatchesScan(t *testing.T) {
	const rows = 5000
	ix, _, evals, pvals := buildIndex(t, rows)
	// Bin-aligned ranges evaluate exactly (bins: energy width 10, pt width 10).
	ranges := []Range{
		{Attr: 0, Lo: 20, Hi: 60}, // energy bins 2..5
		{Attr: 1, Lo: 10, Hi: 30}, // pt bins 1..2
	}
	got, err := ix.Evaluate(ranges)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for r := 0; r < rows; r++ {
		if evals[r] >= 20 && evals[r] < 60 && pvals[r] >= 10 && pvals[r] < 30 {
			want++
		}
	}
	if got.Count() != want {
		t.Errorf("Evaluate count = %d, scan count = %d", got.Count(), want)
	}
}

func TestIndexQueryFiles(t *testing.T) {
	ix, cat, _, _ := buildIndex(t, 1000)
	files, err := ix.QueryFiles([]Range{
		{Attr: 0, Lo: 20, Hi: 60}, // 4 energy bins
		{Attr: 1, Lo: 10, Hi: 30}, // 2 pt bins
	})
	if err != nil {
		t.Fatal(err)
	}
	if files.Len() != 6 {
		t.Errorf("QueryFiles = %d files, want 6", files.Len())
	}
	// Every file exists in the catalog with a positive size.
	for _, f := range files {
		if cat.Size(f) <= 0 {
			t.Errorf("file %d (%s) has size %d", f, cat.Name(f), cat.Size(f))
		}
	}
	// Exclusive upper bound on a bin boundary does not touch the next bin.
	files, err = ix.QueryFiles([]Range{{Attr: 0, Lo: 0, Hi: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if files.Len() != 1 {
		t.Errorf("boundary range touched %d bins, want 1", files.Len())
	}
}

func TestIndexEmptyRangesMatchAll(t *testing.T) {
	ix, _, _, _ := buildIndex(t, 100)
	bm, err := ix.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Count() != 100 {
		t.Errorf("match-all count = %d", bm.Count())
	}
}

func TestIndexErrors(t *testing.T) {
	cat := bundle.NewCatalog()
	ix := New(10, cat)
	ix.AddAttribute("a", 0, 1, 2)
	if _, err := ix.QueryFiles([]Range{{Attr: 0, Lo: 0, Hi: 1}}); err == nil {
		t.Error("query before Finalize accepted")
	}
	ix.Finalize()
	if _, err := ix.Evaluate([]Range{{Attr: 5, Lo: 0, Hi: 1}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := ix.Evaluate([]Range{{Attr: 0, Lo: 1, Hi: 0}}); err == nil {
		t.Error("empty range accepted")
	}
	// Finalize is idempotent; mutation afterwards panics.
	ix.Finalize()
	defer func() {
		if recover() == nil {
			t.Error("SetValue after Finalize did not panic")
		}
	}()
	ix.SetValue(0, 0, 0.5)
}

func TestIndexAttributeFiles(t *testing.T) {
	ix, _, _, _ := buildIndex(t, 100)
	files := ix.AttributeFiles(0)
	if len(files) != 10 {
		t.Errorf("AttributeFiles = %d, want 10", len(files))
	}
}

// Property: for random bin-aligned single-attribute ranges, Evaluate counts
// match a linear scan.
func TestQuickBinAlignedExactness(t *testing.T) {
	const rows = 800
	ix, _, evals, _ := buildIndex(t, rows)
	f := func(loBin, width uint8) bool {
		lo := int(loBin) % 10
		w := 1 + int(width)%(10-lo)
		rlo, rhi := float64(lo*10), float64((lo+w)*10)
		bm, err := ix.Evaluate([]Range{{Attr: 0, Lo: rlo, Hi: rhi}})
		if err != nil {
			return false
		}
		want := 0
		for r := 0; r < rows; r++ {
			if evals[r] >= rlo && evals[r] < rhi {
				want++
			}
		}
		return bm.Count() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	ix, _, _, _ := buildIndex(b, 100000)
	ranges := []Range{{Attr: 0, Lo: 20, Hi: 60}, {Attr: 1, Lo: 10, Hi: 30}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Evaluate(ranges); err != nil {
			b.Fatal(err)
		}
	}
}
