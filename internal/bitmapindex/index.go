package bitmapindex

import (
	"fmt"

	"fbcache/internal/bundle"
	"fbcache/internal/floats"
)

// Attribute is one indexed column: its value range [Lo, Hi) divided into
// Bins equal-width bins, each with a bitmap and a registered file.
type Attribute struct {
	Name string
	Lo   float64
	Hi   float64
	Bins int

	bitmaps []*Bitmap
	files   []bundle.FileID
}

// binOf maps a value to its bin, clamping out-of-range values to the edges.
func (a *Attribute) binOf(v float64) int {
	if v < a.Lo {
		return 0
	}
	if v >= a.Hi {
		return a.Bins - 1
	}
	bin := int((v - a.Lo) / (a.Hi - a.Lo) * float64(a.Bins))
	if bin >= a.Bins {
		bin = a.Bins - 1
	}
	return bin
}

// Index is a bit-sliced index over a fixed number of rows. Build it with
// New + AddAttribute + SetValue, then Finalize to register the bin files in
// the catalog; afterwards queries can be planned (QueryFiles) and evaluated
// (Evaluate).
type Index struct {
	rows      int
	attrs     []*Attribute
	cat       *bundle.Catalog
	finalized bool
}

// New returns an index over `rows` rows whose bin files will be registered
// in cat.
func New(rows int, cat *bundle.Catalog) *Index {
	if rows <= 0 {
		panic(fmt.Sprintf("bitmapindex: rows must be positive, got %d", rows))
	}
	if cat == nil {
		panic("bitmapindex: nil catalog")
	}
	return &Index{rows: rows, cat: cat}
}

// Rows reports the row count.
func (ix *Index) Rows() int { return ix.rows }

// NumAttributes reports the attribute count.
func (ix *Index) NumAttributes() int { return len(ix.attrs) }

// AddAttribute declares an indexed attribute and returns its position.
// It panics after Finalize or on invalid parameters.
func (ix *Index) AddAttribute(name string, lo, hi float64, bins int) int {
	if ix.finalized {
		panic("bitmapindex: AddAttribute after Finalize")
	}
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("bitmapindex: bad attribute %q [%v,%v) bins=%d", name, lo, hi, bins))
	}
	a := &Attribute{Name: name, Lo: lo, Hi: hi, Bins: bins}
	a.bitmaps = make([]*Bitmap, bins)
	for i := range a.bitmaps {
		a.bitmaps[i] = NewBitmap(ix.rows)
	}
	ix.attrs = append(ix.attrs, a)
	return len(ix.attrs) - 1
}

// SetValue records the value of attribute attr for row: the matching bin's
// bit is set. Call once per (row, attr).
func (ix *Index) SetValue(row, attr int, value float64) {
	if ix.finalized {
		panic("bitmapindex: SetValue after Finalize")
	}
	a := ix.attrs[attr]
	a.bitmaps[a.binOf(value)].Set(row)
}

// Finalize registers every bin's file in the catalog, sized by the
// bitmap's run-length estimate, and freezes the index.
func (ix *Index) Finalize() {
	if ix.finalized {
		return
	}
	for _, a := range ix.attrs {
		a.files = make([]bundle.FileID, a.Bins)
		for b, bm := range a.bitmaps {
			name := fmt.Sprintf("%s/bin%03d.bm", a.Name, b)
			a.files[b] = ix.cat.Add(name, bundle.Size(bm.SizeBytes()))
		}
	}
	ix.finalized = true
}

// Range is a half-open predicate Lo <= value < Hi on one attribute.
type Range struct {
	Attr int
	Lo   float64
	Hi   float64
}

// QueryFiles returns the bundle of bin files a query over the given ranges
// must have in cache — the file-bundle the SRM stages. Errors before
// Finalize or on bad ranges.
func (ix *Index) QueryFiles(ranges []Range) (bundle.Bundle, error) {
	if !ix.finalized {
		return nil, fmt.Errorf("bitmapindex: index not finalized")
	}
	var ids []bundle.FileID
	for _, r := range ranges {
		a, lo, hi, err := ix.binsOf(r)
		if err != nil {
			return nil, err
		}
		for b := lo; b <= hi; b++ {
			ids = append(ids, a.files[b])
		}
	}
	return bundle.FromSlice(ids), nil
}

// Evaluate answers the query: AND across ranges of the OR of each range's
// bin bitmaps. An empty range list matches all rows.
func (ix *Index) Evaluate(ranges []Range) (*Bitmap, error) {
	if !ix.finalized {
		return nil, fmt.Errorf("bitmapindex: index not finalized")
	}
	result := NewBitmap(ix.rows)
	if len(ranges) == 0 {
		for i := 0; i < ix.rows; i++ {
			result.Set(i)
		}
		return result, nil
	}
	for i, r := range ranges {
		a, lo, hi, err := ix.binsOf(r)
		if err != nil {
			return nil, err
		}
		or := NewBitmap(ix.rows)
		for b := lo; b <= hi; b++ {
			or.OrWith(a.bitmaps[b])
		}
		if i == 0 {
			result = or
		} else {
			result.AndWith(or)
		}
	}
	return result, nil
}

// binsOf resolves a range to its attribute and touched bin interval.
// Note: bin-aligned evaluation over-selects rows whose values share a bin
// with the range boundary — the standard bit-sliced-index candidate check
// trade-off [15]; callers needing exactness re-check candidates.
func (ix *Index) binsOf(r Range) (*Attribute, int, int, error) {
	if r.Attr < 0 || r.Attr >= len(ix.attrs) {
		return nil, 0, 0, fmt.Errorf("bitmapindex: unknown attribute %d", r.Attr)
	}
	if r.Hi <= r.Lo {
		return nil, 0, 0, fmt.Errorf("bitmapindex: empty range [%v,%v)", r.Lo, r.Hi)
	}
	a := ix.attrs[r.Attr]
	lo := a.binOf(r.Lo)
	hi := a.binOf(r.Hi)
	// Hi is exclusive: if it falls exactly on a bin boundary, the boundary
	// bin is not touched.
	if r.Hi > a.Lo && r.Hi < a.Hi {
		width := (a.Hi - a.Lo) / float64(a.Bins)
		if floats.AlmostEqual(r.Hi, a.Lo+float64(hi)*width) {
			hi--
		}
	}
	if hi < lo {
		hi = lo
	}
	return a, lo, hi, nil
}

// AttributeFiles returns the file IDs of an attribute's bins (after
// Finalize), for workload builders.
func (ix *Index) AttributeFiles(attr int) []bundle.FileID {
	if !ix.finalized {
		return nil
	}
	out := make([]bundle.FileID, len(ix.attrs[attr].files))
	copy(out, ix.attrs[attr].files)
	return out
}
