// Package bitmapindex implements the bit-sliced index of the paper's third
// motivating application (§1.1, after Wu et al. [15]): each attribute's
// value range is divided into bins, each bin owns one bitmap over all rows
// (events), and every bitmap is stored in its own file. A range query ORs
// the bitmaps of the bins it touches within an attribute and ANDs across
// attributes — so evaluating a query requires a file-bundle of bin files to
// be cache-resident simultaneously.
//
// The Index registers its bin files in a bundle.Catalog so the caching
// stack (SRM, policies, simulators) can stage exactly the bundles real
// queries would demand.
package bitmapindex

import (
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-length uncompressed bitset over row IDs.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an all-zero bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmapindex: negative length %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len reports the number of rows.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmapindex: Set(%d) outside [0,%d)", i, b.n))
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Get reports whether row i is marked.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count reports the number of set rows (popcount).
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// And returns a new bitmap with the intersection of b and other.
// The bitmaps must have equal length.
func (b *Bitmap) And(other *Bitmap) *Bitmap {
	b.check(other)
	out := NewBitmap(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] & other.words[i]
	}
	return out
}

// Or returns a new bitmap with the union of b and other.
func (b *Bitmap) Or(other *Bitmap) *Bitmap {
	b.check(other)
	out := NewBitmap(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] | other.words[i]
	}
	return out
}

// OrWith unions other into b in place.
func (b *Bitmap) OrWith(other *Bitmap) {
	b.check(other)
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndWith intersects other into b in place.
func (b *Bitmap) AndWith(other *Bitmap) {
	b.check(other)
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	out := NewBitmap(b.n)
	copy(out.words, b.words)
	return out
}

// SizeBytes reports the serialized size of the bitmap: a run-length
// estimate (8 bytes per run of consecutive set bits plus a header),
// mimicking the compression behaviour of real bitmap indices — dense,
// fragmented bins cost more than sparse or contiguous ones.
func (b *Bitmap) SizeBytes() int64 {
	const header = 16
	runs := int64(0)
	prev := false
	for _, w := range b.words {
		if w == 0 {
			prev = false
			continue
		}
		if w == ^uint64(0) {
			if !prev {
				runs++
			}
			prev = true
			continue
		}
		for bit := 0; bit < 64; bit++ {
			cur := w&(1<<uint(bit)) != 0
			if cur && !prev {
				runs++
			}
			prev = cur
		}
	}
	return header + runs*8
}

func (b *Bitmap) check(other *Bitmap) {
	if other == nil || other.n != b.n {
		panic(fmt.Sprintf("bitmapindex: length mismatch %d vs %v", b.n, other))
	}
}
