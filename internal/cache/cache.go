// Package cache models the SRM's staging disk (§1.1): a byte-capacity store
// of whole files. It tracks residency, pin counts (files a running job must
// not lose), and cumulative traffic counters — the raw material of the §1.2
// byte miss ratio. Replacement *policy* lives elsewhere (internal/core,
// internal/policy); this package only enforces the mechanics — capacity,
// residency, and pinning invariants. When a tracer is installed it also
// emits one obs.LoadEvent/obs.EvictEvent per residency change, which gives
// every policy — including the classic baselines — a replayable trace for
// free.
package cache

import (
	"fmt"

	"fbcache/internal/bundle"
	"fbcache/internal/invariant"
	"fbcache/internal/obs"
)

// Cache is a fixed-capacity store of whole files. Not safe for concurrent
// use; internal/srm adds locking for the service layer.
type Cache struct {
	capacity bundle.Size
	used     bundle.Size

	// Residency and pins are dense tables indexed by FileID (catalog IDs are
	// sequential small integers): size[f] is f's resident byte size or -1
	// when absent, pins[f] its pin count. Dense storage turns the per-file
	// probes on every admission hot path (Supports, Contains, Pinned,
	// MissingAppend) into bounds-checked loads instead of map lookups, and
	// makes resident listings naturally ascending. count tracks the number
	// of resident files. Both tables grow together on first sight of a
	// larger FileID.
	size  []bundle.Size
	pins  []int32
	count int

	// Cumulative counters since New or ResetCounters.
	bytesLoaded  bundle.Size
	bytesEvicted bundle.Size
	loads        int64
	evictions    int64

	// tracer, when non-nil, receives a Load/Evict event per file movement.
	// Events are stamped with the load/eviction ordinal — the cache has no
	// clock of any kind.
	tracer obs.Tracer
}

// New returns an empty cache with the given capacity in bytes.
// It panics if capacity is negative.
func New(capacity bundle.Size) *Cache {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: negative capacity %d", capacity))
	}
	return &Cache{capacity: capacity}
}

// SetTracer installs t (nil disables tracing). Every Insert emits a
// LoadEvent and every Evict an EvictEvent, regardless of which policy drove
// the movement — classic policies get per-file tracing for free.
func (c *Cache) SetTracer(t obs.Tracer) { c.tracer = t }

// The accessors below sit inside every admission and eviction decision made
// by the policies, so they carry perf contracts (enforced by `fbvet -perf`,
// see internal/analyzers/perf): they must inline into callers and must not
// force their receiver or arguments onto the heap.

// Capacity reports the total capacity in bytes.
//
//fbvet:inline read per admission budget computation
//fbvet:noescape
func (c *Cache) Capacity() bundle.Size { return c.capacity }

// Used reports the bytes currently occupied.
//
//fbvet:inline
//fbvet:noescape
func (c *Cache) Used() bundle.Size { return c.used }

// Free reports the unoccupied bytes.
//
//fbvet:inline read per decay-and-evict round
//fbvet:noescape
func (c *Cache) Free() bundle.Size { return c.capacity - c.used }

// Len reports the number of resident files.
//
//fbvet:inline
//fbvet:noescape
func (c *Cache) Len() int { return c.count }

// Contains reports whether file f is resident.
//
//fbvet:inline read per file on ranking and prefetch paths
//fbvet:noescape
func (c *Cache) Contains(f bundle.FileID) bool {
	i := int(f)
	return i < len(c.size) && c.size[i] >= 0
}

// SizeOf returns the resident size of f and whether it is resident.
//
//fbvet:inline
//fbvet:noescape
func (c *Cache) SizeOf(f bundle.FileID) (bundle.Size, bool) {
	if i := int(f); i < len(c.size) && c.size[i] >= 0 {
		return c.size[i], true
	}
	return 0, false
}

// Supports reports whether every file of b is resident — the paper's
// "request-hit": the cache supports r iff F(r) ⊆ F(C). It is the first
// check of every Admit.
//
//fbvet:inline
//fbvet:noescape
//fbvet:nobce
func (c *Cache) Supports(b bundle.Bundle) bool {
	sz := c.size
	for _, f := range b {
		i := int(f)
		if uint(i) >= uint(len(sz)) || sz[i] < 0 {
			return false
		}
	}
	return true
}

// Missing returns the files of b that are not resident.
func (c *Cache) Missing(b bundle.Bundle) bundle.Bundle {
	return c.MissingAppend(nil, b)
}

// MissingAppend appends the non-resident files of b to dst and returns the
// extended slice — the allocation-free form of Missing for per-admission
// callers that reuse a scratch slice.
func (c *Cache) MissingAppend(dst, b bundle.Bundle) bundle.Bundle {
	sz := c.size
	for _, f := range b {
		if i := int(f); uint(i) >= uint(len(sz)) || sz[i] < 0 {
			dst = append(dst, f)
		}
	}
	return dst
}

// MissingBytes reports the total size of b's non-resident files under sizeOf.
func (c *Cache) MissingBytes(b bundle.Bundle, sizeOf bundle.SizeFunc) bundle.Size {
	var total bundle.Size
	sz := c.size
	for _, f := range b {
		if i := int(f); uint(i) >= uint(len(sz)) || sz[i] < 0 {
			total += sizeOf(f)
		}
	}
	return total
}

// Insert makes f resident with the given size. It returns an error if the
// file would not fit or is already resident (idempotent re-insertion of the
// same size is allowed and a no-op).
func (c *Cache) Insert(f bundle.FileID, size bundle.Size) error {
	if size < 0 {
		return fmt.Errorf("cache: insert %d: negative size %d", f, size)
	}
	if size > c.capacity {
		return fmt.Errorf("cache: insert %d: size %d exceeds capacity %d", f, size, c.capacity)
	}
	i := c.grow(f)
	if old := c.size[i]; old >= 0 {
		if old == size {
			return nil
		}
		return fmt.Errorf("cache: insert %d: already resident with size %d (new %d)", f, old, size)
	}
	if c.used+size > c.capacity {
		return fmt.Errorf("cache: insert %d: need %d bytes, only %d free", f, size, c.Free())
	}
	c.size[i] = size
	c.count++
	c.used += size
	c.bytesLoaded += size
	c.loads++
	if c.tracer != nil {
		c.tracer.Load(obs.LoadEvent{At: float64(c.loads), File: int64(f), Bytes: int64(size)})
	}
	if invariant.Enabled {
		invariant.Check(c.used >= 0 && c.used <= c.capacity,
			"cache: after Insert(%d, %d): used %d outside [0, capacity %d]",
			f, size, c.used, c.capacity)
	}
	return nil
}

// Evict removes f. It returns an error if f is pinned or not resident.
func (c *Cache) Evict(f bundle.FileID) error {
	i := int(f)
	if i >= len(c.size) || c.size[i] < 0 {
		return fmt.Errorf("cache: evict %d: not resident", f)
	}
	size := c.size[i]
	if c.pins[i] > 0 {
		return fmt.Errorf("cache: evict %d: pinned %d times", f, c.pins[i])
	}
	c.size[i] = -1
	c.count--
	c.used -= size
	c.bytesEvicted += size
	c.evictions++
	if c.tracer != nil {
		c.tracer.Evict(obs.EvictEvent{At: float64(c.evictions), File: int64(f), Bytes: int64(size)})
	}
	if invariant.Enabled {
		invariant.Check(c.used >= 0 && c.used <= c.capacity,
			"cache: after Evict(%d): used %d outside [0, capacity %d]",
			f, c.used, c.capacity)
	}
	return nil
}

// Pin increments f's pin count, protecting it from eviction while a job runs.
// It returns an error if f is not resident.
func (c *Cache) Pin(f bundle.FileID) error {
	i := int(f)
	if i >= len(c.size) || c.size[i] < 0 {
		return fmt.Errorf("cache: pin %d: not resident", f)
	}
	c.pins[i]++
	return nil
}

// Unpin decrements f's pin count. It returns an error if f is not pinned.
func (c *Cache) Unpin(f bundle.FileID) error {
	i := int(f)
	if i >= len(c.pins) || c.pins[i] <= 0 {
		return fmt.Errorf("cache: unpin %d: not pinned", f)
	}
	c.pins[i]--
	return nil
}

// Pinned reports whether f has a positive pin count.
//
//fbvet:inline read per file on every eviction scan
//fbvet:noescape
func (c *Cache) Pinned(f bundle.FileID) bool {
	i := int(f)
	return i < len(c.pins) && c.pins[i] > 0
}

// PinBundle pins every file of b, or pins nothing and returns an error if any
// file is absent.
func (c *Cache) PinBundle(b bundle.Bundle) error {
	if !c.Supports(b) {
		return fmt.Errorf("cache: pin bundle %v: not fully resident", b)
	}
	for _, f := range b {
		c.pins[int(f)]++
	}
	return nil
}

// UnpinBundle unpins every file of b. Errors on the first non-pinned file.
func (c *Cache) UnpinBundle(b bundle.Bundle) error {
	for _, f := range b {
		if err := c.Unpin(f); err != nil {
			return err
		}
	}
	return nil
}

// Resident returns the resident file IDs in ascending order.
func (c *Cache) Resident() bundle.Bundle {
	return c.ResidentAppend(make(bundle.Bundle, 0, c.count))
}

// ResidentAppend appends the resident file IDs to dst and returns the
// extended slice sorted ascending as a whole — the allocation-free form of
// Resident for per-admission callers (eviction scans) that reuse a scratch
// slice. Pass an empty dst (typically scratch[:0]); prior contents are
// sorted together with the appended IDs.
func (c *Cache) ResidentAppend(dst bundle.Bundle) bundle.Bundle {
	// The dense table walks in ascending FileID order, so the listing is
	// sorted by construction — no sort pass, no comparator allocation.
	for i, s := range c.size {
		if s >= 0 {
			dst = append(dst, bundle.FileID(i))
		}
	}
	return dst
}

// grow widens the dense tables to cover f and returns int(f). New size slots
// start at -1 (absent); new pin slots at 0.
func (c *Cache) grow(f bundle.FileID) int {
	i := int(f)
	if i >= len(c.size) {
		n := max(i+1, 2*len(c.size))
		gs := make([]bundle.Size, n)
		for j := copy(gs, c.size); j < n; j++ {
			gs[j] = -1
		}
		c.size = gs
		gp := make([]int32, n)
		copy(gp, c.pins)
		c.pins = gp
	}
	return i
}

// Counters reports cumulative traffic since construction or ResetCounters.
func (c *Cache) Counters() (bytesLoaded, bytesEvicted bundle.Size, loads, evictions int64) {
	return c.bytesLoaded, c.bytesEvicted, c.loads, c.evictions
}

// ResetCounters zeroes the cumulative counters; residency is unaffected.
func (c *Cache) ResetCounters() {
	c.bytesLoaded, c.bytesEvicted, c.loads, c.evictions = 0, 0, 0, 0
}

// CheckInvariants verifies internal consistency (used == Σ sizes, pins only on
// resident files, used ≤ capacity). Tests and the simulator's paranoid mode
// call this; it returns a descriptive error on the first violation. The dense
// tables walk in ascending FileID order, so the violation reported — and
// therefore any test output built from it — is deterministic.
func (c *Cache) CheckInvariants() error {
	var sum bundle.Size
	var n int
	for _, s := range c.size {
		if s >= 0 {
			sum += s
			n++
		}
	}
	if n != c.count {
		return fmt.Errorf("cache: count=%d but %d resident sizes", c.count, n)
	}
	if sum != c.used {
		return fmt.Errorf("cache: used=%d but sizes sum to %d", c.used, sum)
	}
	if c.used > c.capacity {
		return fmt.Errorf("cache: used %d exceeds capacity %d", c.used, c.capacity)
	}
	for i, p := range c.pins {
		if p < 0 {
			return fmt.Errorf("cache: file %d has negative pin count %d", i, p)
		}
		if p > 0 && (i >= len(c.size) || c.size[i] < 0) {
			return fmt.Errorf("cache: file %d pinned but not resident", i)
		}
	}
	return nil
}
