package cache

import (
	"testing"
	"testing/quick"

	"fbcache/internal/bundle"
)

func TestNewPanicsOnNegativeCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(-1)
}

func TestInsertEvictBasics(t *testing.T) {
	c := New(100)
	if err := c.Insert(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(2, 60); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 100 || c.Free() != 0 || c.Len() != 2 {
		t.Errorf("used=%d free=%d len=%d", c.Used(), c.Free(), c.Len())
	}
	if err := c.Insert(3, 1); err == nil {
		t.Error("over-capacity insert succeeded")
	}
	if err := c.Evict(1); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 60 || c.Contains(1) {
		t.Errorf("after evict: used=%d contains(1)=%v", c.Used(), c.Contains(1))
	}
	if err := c.Evict(1); err == nil {
		t.Error("double evict succeeded")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertEdgeCases(t *testing.T) {
	c := New(10)
	if err := c.Insert(1, -5); err == nil {
		t.Error("negative size insert succeeded")
	}
	if err := c.Insert(1, 11); err == nil {
		t.Error("larger-than-capacity insert succeeded")
	}
	if err := c.Insert(1, 5); err != nil {
		t.Fatal(err)
	}
	// Idempotent same-size re-insert is a no-op.
	if err := c.Insert(1, 5); err != nil {
		t.Errorf("same-size re-insert: %v", err)
	}
	if c.Used() != 5 {
		t.Errorf("used = %d after idempotent insert", c.Used())
	}
	// Different-size re-insert is an error.
	if err := c.Insert(1, 6); err == nil {
		t.Error("different-size re-insert succeeded")
	}
	// Zero-size file is legal (e.g. empty bitmap slice).
	if err := c.Insert(2, 0); err != nil {
		t.Errorf("zero-size insert: %v", err)
	}
}

func TestSupportsAndMissing(t *testing.T) {
	c := New(100)
	for f, s := range map[bundle.FileID]bundle.Size{1: 10, 3: 10, 5: 10} {
		if err := c.Insert(f, s); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Supports(bundle.New(1, 3)) {
		t.Error("Supports({1,3}) = false")
	}
	if !c.Supports(bundle.New()) {
		t.Error("Supports(empty) = false")
	}
	if c.Supports(bundle.New(1, 2)) {
		t.Error("Supports({1,2}) = true")
	}
	if got := c.Missing(bundle.New(1, 2, 4, 5)); !got.Equal(bundle.New(2, 4)) {
		t.Errorf("Missing = %v", got)
	}
	sizeOf := func(f bundle.FileID) bundle.Size { return bundle.Size(f) * 100 }
	if got := c.MissingBytes(bundle.New(1, 2, 4), sizeOf); got != 600 {
		t.Errorf("MissingBytes = %d, want 600", got)
	}
}

func TestPinning(t *testing.T) {
	c := New(100)
	if err := c.Pin(1); err == nil {
		t.Error("pin of absent file succeeded")
	}
	if err := c.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Pin(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Pin(1); err != nil {
		t.Fatal(err)
	}
	if !c.Pinned(1) {
		t.Error("Pinned(1) = false")
	}
	if err := c.Evict(1); err == nil {
		t.Error("evicted pinned file")
	}
	if err := c.Unpin(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Evict(1); err == nil {
		t.Error("evicted file still pinned once")
	}
	if err := c.Unpin(1); err != nil {
		t.Fatal(err)
	}
	if c.Pinned(1) {
		t.Error("still pinned after full unpin")
	}
	if err := c.Evict(1); err != nil {
		t.Errorf("evict after unpin: %v", err)
	}
	if err := c.Unpin(1); err == nil {
		t.Error("unpin of unpinned file succeeded")
	}
}

func TestPinBundleAtomicity(t *testing.T) {
	c := New(100)
	if err := c.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	// 2 is absent: nothing should be pinned.
	if err := c.PinBundle(bundle.New(1, 2)); err == nil {
		t.Fatal("PinBundle with absent member succeeded")
	}
	if c.Pinned(1) {
		t.Error("partial pin leaked")
	}
	if err := c.Insert(2, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.PinBundle(bundle.New(1, 2)); err != nil {
		t.Fatal(err)
	}
	if !c.Pinned(1) || !c.Pinned(2) {
		t.Error("bundle not pinned")
	}
	if err := c.UnpinBundle(bundle.New(1, 2)); err != nil {
		t.Fatal(err)
	}
	if c.Pinned(1) || c.Pinned(2) {
		t.Error("bundle not unpinned")
	}
}

func TestResidentSorted(t *testing.T) {
	c := New(100)
	for _, f := range []bundle.FileID{9, 2, 7, 4} {
		if err := c.Insert(f, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Resident(); !got.Equal(bundle.New(2, 4, 7, 9)) {
		t.Errorf("Resident = %v", got)
	}
}

func TestCounters(t *testing.T) {
	c := New(100)
	c.Insert(1, 30)
	c.Insert(2, 20)
	c.Evict(1)
	loaded, evicted, loads, evs := c.Counters()
	if loaded != 50 || evicted != 30 || loads != 2 || evs != 1 {
		t.Errorf("counters = %d %d %d %d", loaded, evicted, loads, evs)
	}
	c.ResetCounters()
	loaded, evicted, loads, evs = c.Counters()
	if loaded != 0 || evicted != 0 || loads != 0 || evs != 0 {
		t.Error("ResetCounters did not zero")
	}
	if c.Used() != 20 {
		t.Error("ResetCounters touched residency")
	}
}

// Property: any sequence of random inserts/evicts/pins keeps invariants.
func TestQuickInvariants(t *testing.T) {
	type op struct {
		Kind uint8
		File uint8
		Size uint16
	}
	f := func(ops []op) bool {
		c := New(1000)
		for _, o := range ops {
			f := bundle.FileID(o.File % 32)
			switch o.Kind % 4 {
			case 0:
				_ = c.Insert(f, bundle.Size(o.Size%400))
			case 1:
				_ = c.Evict(f)
			case 2:
				_ = c.Pin(f)
			case 3:
				_ = c.Unpin(f)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSupports(b *testing.B) {
	c := New(1 << 30)
	for i := 0; i < 1000; i++ {
		c.Insert(bundle.FileID(i), 1<<20)
	}
	q := bundle.New(10, 200, 500, 999)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Supports(q)
	}
}
