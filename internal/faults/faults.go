// Package faults is the deterministic fault model for the data-grid
// simulator: scenario-driven schedules of site (MSS) outages, WAN link-down
// intervals and bandwidth brownouts, plus seeded per-transfer failure
// probabilities. The paper's premise (§1, §2) is that staging a file-bundle
// across a wide-area grid is expensive and unreliable; this package supplies
// the "unreliable" half so internal/simulate can measure how the caching
// policies degrade when the grid misbehaves.
//
// Everything is a pure function of the Scenario and its seed: window
// schedules are evaluated against simulation time (float64 seconds, never
// the wall clock) and all stochastic draws — per-transfer failures and
// retry-backoff jitter — come from one seeded *rand.Rand owned by the
// Injector. Two runs sharing a scenario therefore produce identical fault
// sequences, which is what makes degraded-mode experiments reproducible.
//
// The zero-valued Scenario is the sanctioned "faults off" configuration:
// no windows, zero failure probability, unlimited staging budget. An
// Injector built from it reports every site up at full speed and never
// fails a transfer, so simulations run through the fault path are
// bit-identical to fault-free runs.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Window is one scheduled fault interval, half-open: [Start, End) in
// simulation seconds.
type Window struct {
	Start, End float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Duration reports the window length clipped to [0, horizon].
func (w Window) clipped(horizon float64) float64 {
	start, end := w.Start, w.End
	if start < 0 {
		start = 0
	}
	if end > horizon {
		end = horizon
	}
	if end <= start {
		return 0
	}
	return end - start
}

// Brownout is a bandwidth degradation: transfers that start inside the
// window take Factor times as long (Factor >= 1).
type Brownout struct {
	Window
	Factor float64
}

// SiteFaults is the schedule for one site.
type SiteFaults struct {
	// Outages are intervals during which the site's MSS is down (drives
	// offline): no transfer may start; transfers queue until the window
	// closes.
	Outages []Window
	// LinkDown are intervals during which the WAN link from the site to the
	// local cache is down: the site is unreachable and failover should walk
	// to the next-cheapest replica.
	LinkDown []Window
	// Brownouts scale the duration of transfers starting inside them.
	Brownouts []Brownout
}

// RetryPolicy caps and paces transfer retries: attempt n (0-based) that
// fails waits Base*Multiplier^n seconds (capped at Max) plus seeded jitter
// before the next attempt, and a single source is tried at most MaxAttempts
// times before failover moves on.
type RetryPolicy struct {
	// MaxAttempts bounds attempts per source per transfer (>= 1).
	MaxAttempts int
	// BaseDelaySec is the backoff after the first failure.
	BaseDelaySec float64
	// MaxDelaySec caps the exponential growth.
	MaxDelaySec float64
	// Multiplier is the exponential base (>= 1).
	Multiplier float64
	// JitterFrac spreads each delay uniformly in [1-j, 1+j] using the
	// injector's seeded RNG — never the wall clock.
	JitterFrac float64
}

// DefaultRetryPolicy mirrors common data-mover defaults: four attempts,
// 1s base delay doubling to a 60s cap, ±25% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelaySec: 1, MaxDelaySec: 60, Multiplier: 2, JitterFrac: 0.25}
}

// Validate reports the first problem with the policy.
func (p RetryPolicy) Validate() error {
	switch {
	case p.MaxAttempts < 1:
		return fmt.Errorf("faults: retry needs MaxAttempts >= 1, got %d", p.MaxAttempts)
	case p.BaseDelaySec < 0 || p.MaxDelaySec < 0:
		return fmt.Errorf("faults: negative retry delay")
	case p.Multiplier < 1:
		return fmt.Errorf("faults: retry multiplier %v < 1", p.Multiplier)
	case p.JitterFrac < 0 || p.JitterFrac > 1:
		return fmt.Errorf("faults: jitter fraction %v outside [0,1]", p.JitterFrac)
	}
	return nil
}

// Backoff returns the delay before retrying after failed attempt number
// attempt (0-based). Jitter is drawn from rng, the simulation's seeded
// stream.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) float64 {
	d := p.BaseDelaySec * math.Pow(p.Multiplier, float64(attempt))
	if p.MaxDelaySec > 0 && d > p.MaxDelaySec {
		d = p.MaxDelaySec
	}
	if p.JitterFrac > 0 && rng != nil {
		d *= 1 + p.JitterFrac*(2*rng.Float64()-1)
	}
	return d
}

// Scenario is one complete, deterministic fault schedule for a run. The
// zero value means "no faults".
type Scenario struct {
	// Seed drives the injector's RNG (transfer-failure draws and backoff
	// jitter). Independent of the workload/arrival seeds so fault schedules
	// can vary while traffic stays fixed.
	Seed int64
	// TransferFailureProb is the probability that any single transfer
	// attempt fails (discovered when the transfer would have completed).
	TransferFailureProb float64
	// Sites maps site index (grid.SiteID, or 0 for the single-MSS model) to
	// its fault schedule. Only keyed lookups are performed, never iteration,
	// so map order cannot leak into results.
	Sites map[int]SiteFaults
	// Retry paces and bounds retries; the zero value means
	// DefaultRetryPolicy.
	Retry RetryPolicy
	// StageBudgetSec bounds the staging time of one job (arrival of the
	// stage request to the last file landing); a job exceeding it is
	// requeued or marked failed. 0 means unlimited.
	StageBudgetSec float64
	// MaxJobAttempts is how many times a job whose staging failed is
	// dispatched in total (1 = never requeued). 0 means 1.
	MaxJobAttempts int
}

// Validate reports the first problem with the scenario.
func (sc Scenario) Validate() error {
	if sc.TransferFailureProb < 0 || sc.TransferFailureProb >= 1 {
		return fmt.Errorf("faults: transfer failure probability %v outside [0,1)", sc.TransferFailureProb)
	}
	if sc.StageBudgetSec < 0 {
		return fmt.Errorf("faults: negative stage budget")
	}
	if sc.MaxJobAttempts < 0 {
		return fmt.Errorf("faults: negative MaxJobAttempts")
	}
	retry := sc.Retry
	if retry == (RetryPolicy{}) {
		retry = DefaultRetryPolicy()
	}
	if err := retry.Validate(); err != nil {
		return err
	}
	for site, sf := range sc.Sites {
		for _, w := range append(append([]Window{}, sf.Outages...), sf.LinkDown...) {
			if w.End < w.Start {
				return fmt.Errorf("faults: site %d window [%v,%v) ends before it starts", site, w.Start, w.End)
			}
		}
		for _, b := range sf.Brownouts {
			if b.End < b.Start {
				return fmt.Errorf("faults: site %d brownout [%v,%v) ends before it starts", site, b.Start, b.End)
			}
			if b.Factor < 1 {
				return fmt.Errorf("faults: site %d brownout factor %v < 1", site, b.Factor)
			}
		}
	}
	return nil
}

// Injector evaluates a Scenario against simulation time. It is not safe for
// concurrent use; the discrete-event simulator is single-goroutine.
type Injector struct {
	sc  Scenario
	rng *rand.Rand

	draws    int64
	failures int64
}

// NewInjector validates sc, fills defaults (retry policy, MaxJobAttempts)
// and returns an injector with its own seeded RNG.
func NewInjector(sc Scenario) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Retry == (RetryPolicy{}) {
		sc.Retry = DefaultRetryPolicy()
	}
	if sc.MaxJobAttempts < 1 {
		sc.MaxJobAttempts = 1
	}
	return &Injector{sc: sc, rng: rand.New(rand.NewSource(sc.Seed))}, nil
}

// Scenario returns the normalized scenario (defaults applied).
func (in *Injector) Scenario() Scenario { return in.sc }

// Retry returns the normalized retry policy.
func (in *Injector) Retry() RetryPolicy { return in.sc.Retry }

// RNG exposes the injector's seeded stream for backoff jitter, so all fault
// randomness shares one reproducible source.
func (in *Injector) RNG() *rand.Rand { return in.rng }

func (in *Injector) site(site int) SiteFaults { return in.sc.Sites[site] }

// SiteUp reports whether the site's MSS can start transfers at time at.
func (in *Injector) SiteUp(site int, at float64) bool {
	for _, w := range in.site(site).Outages {
		if w.Contains(at) {
			return false
		}
	}
	return true
}

// LinkUp reports whether the site's WAN link to the local cache is up at
// time at.
func (in *Injector) LinkUp(site int, at float64) bool {
	for _, w := range in.site(site).LinkDown {
		if w.Contains(at) {
			return false
		}
	}
	return true
}

// Up reports whether the site is usable as a transfer source at time at:
// MSS up and link up.
func (in *Injector) Up(site int, at float64) bool {
	return in.SiteUp(site, at) && in.LinkUp(site, at)
}

// SiteNextUp returns the earliest t >= at with the site's MSS out of every
// outage window. The never-up sentinel is +Inf: a window whose End is +Inf
// models a site that left the grid for good, and every finite schedule
// returns a finite time — callers must treat +Inf as "never" (the simulator's
// dark-grid wait abandons staging on it) rather than a schedulable instant.
func (in *Injector) SiteNextUp(site int, at float64) float64 {
	return nextClear(in.site(site).Outages, nil, at)
}

// NextUp returns the earliest t >= at at which the site is fully usable
// (MSS and link both up). +Inf is the same never-up sentinel as SiteNextUp's.
func (in *Injector) NextUp(site int, at float64) float64 {
	sf := in.site(site)
	return nextClear(sf.Outages, sf.LinkDown, at)
}

// DownWithin reports whether the site is (or is scheduled to become)
// unusable — MSS outage or link down — at any point of [from, from+horizon).
// The replica re-planner's emergency trigger: a file whose every live source
// satisfies DownWithin is copied out before the lights go off.
func (in *Injector) DownWithin(site int, from, horizon float64) bool {
	if horizon <= 0 {
		return !in.Up(site, from)
	}
	end := from + horizon
	sf := in.site(site)
	for _, w := range sf.Outages {
		if w.End > from && w.Start < end {
			return true
		}
	}
	for _, w := range sf.LinkDown {
		if w.End > from && w.Start < end {
			return true
		}
	}
	return false
}

// UnusableWindows returns the site's merged, sorted schedule of unusable
// intervals (MSS outages and link-down windows coalesced, overlaps and
// abutments joined). The recovery tracker keys per-outage records off these.
func (in *Injector) UnusableWindows(site int) []Window {
	sf := in.site(site)
	windows := make([]Window, 0, len(sf.Outages)+len(sf.LinkDown))
	windows = append(windows, sf.Outages...)
	windows = append(windows, sf.LinkDown...)
	if len(windows) == 0 {
		return nil
	}
	sort.Slice(windows, func(i, j int) bool {
		if windows[i].Start != windows[j].Start { //fbvet:allow floateq — schedule endpoints are exact config values, not derived floats
			return windows[i].Start < windows[j].Start
		}
		return windows[i].End < windows[j].End
	})
	merged := windows[:1]
	for _, w := range windows[1:] {
		last := &merged[len(merged)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			continue
		}
		merged = append(merged, w)
	}
	out := make([]Window, len(merged))
	copy(out, merged)
	return out
}

// nextClear advances t out of every window in both schedules. Each pass
// either leaves t unchanged (done) or moves it to some window's end, so the
// loop is bounded by the total window count.
func nextClear(a, b []Window, at float64) float64 {
	t := at
	for pass := 0; pass <= len(a)+len(b); pass++ {
		moved := false
		for _, w := range a {
			if w.Contains(t) {
				t, moved = w.End, true
			}
		}
		for _, w := range b {
			if w.Contains(t) {
				t, moved = w.End, true
			}
		}
		if !moved {
			return t
		}
	}
	return t
}

// Slowdown reports the transfer-duration multiplier at the site for a
// transfer starting at time at (1 outside every brownout; overlapping
// brownouts compound).
func (in *Injector) Slowdown(site int, at float64) float64 {
	factor := 1.0
	for _, b := range in.site(site).Brownouts {
		if b.Contains(at) {
			factor *= b.Factor
		}
	}
	return factor
}

// TransferFails draws one seeded Bernoulli trial for a transfer attempt.
// With zero probability no draw is made, so the RNG stream — and therefore
// every downstream jitter draw — is untouched in fault-free runs.
func (in *Injector) TransferFails() bool {
	if in.sc.TransferFailureProb <= 0 {
		return false
	}
	in.draws++
	if in.rng.Float64() < in.sc.TransferFailureProb {
		in.failures++
		return true
	}
	return false
}

// Draws reports the number of transfer-failure trials and how many failed.
func (in *Injector) Draws() (draws, failures int64) { return in.draws, in.failures }

// DowntimeSeconds reports how long the site was unusable (MSS outage or
// link down, overlaps not double-counted) within [0, horizon].
func (in *Injector) DowntimeSeconds(site int, horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	sf := in.site(site)
	windows := make([]Window, 0, len(sf.Outages)+len(sf.LinkDown))
	windows = append(windows, sf.Outages...)
	windows = append(windows, sf.LinkDown...)
	if len(windows) == 0 {
		return 0
	}
	sort.Slice(windows, func(i, j int) bool {
		if windows[i].Start != windows[j].Start { //fbvet:allow floateq — schedule endpoints are exact config values, not derived floats
			return windows[i].Start < windows[j].Start
		}
		return windows[i].End < windows[j].End
	})
	total, end := 0.0, math.Inf(-1)
	for _, w := range windows {
		if w.Start > end {
			total += w.clipped(horizon)
			end = w.End
			continue
		}
		if w.End > end {
			total += Window{Start: end, End: w.End}.clipped(horizon)
			end = w.End
		}
	}
	return total
}
