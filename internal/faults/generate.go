package faults

import (
	"math/rand"
	"sort"
)

// Scenario generators: deterministic, seeded schedules for the three outage
// shapes the degraded-mode studies need beyond hand-written windows —
// correlated rack-group failures, site churn (join/leave cycles), and
// diurnal brownouts. Each generator owns a rand.Rand seeded from its config
// and draws nothing when its rate parameter is zero, so a zero-rate
// generator yields an empty schedule and the resulting Scenario stays
// bit-identical to the fault-free run. Generated schedules always pass
// Scenario.Validate.

// CorrelatedConfig drives GenCorrelated.
type CorrelatedConfig struct {
	// Seed drives the window draws.
	Seed int64
	// Groups are the rack groups: sites in one group share every outage
	// window drawn for it (a rack switch or PDU failing takes them all down).
	Groups [][]int
	// OutagesPerGroup is how many outage windows each group suffers over the
	// horizon. 0 yields an empty schedule.
	OutagesPerGroup int
	// MeanOutageSec is the mean outage duration (exponential, min 1s).
	MeanOutageSec float64
	// HorizonSec bounds window start times.
	HorizonSec float64
}

// GenCorrelated draws rack-group failure schedules: each group gets
// OutagesPerGroup windows whose starts are uniform over the horizon and
// whose durations are exponential with mean MeanOutageSec; every site in the
// group shares the group's windows. Windows are sorted by start per site.
func GenCorrelated(cfg CorrelatedConfig) map[int]SiteFaults {
	out := make(map[int]SiteFaults)
	if cfg.OutagesPerGroup <= 0 || cfg.HorizonSec <= 0 || len(cfg.Groups) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, group := range cfg.Groups {
		windows := make([]Window, 0, cfg.OutagesPerGroup)
		for i := 0; i < cfg.OutagesPerGroup; i++ {
			start := rng.Float64() * cfg.HorizonSec
			dur := rng.ExpFloat64() * cfg.MeanOutageSec
			if dur < 1 {
				dur = 1
			}
			windows = append(windows, Window{Start: start, End: start + dur})
		}
		sortWindows(windows)
		for _, site := range group {
			sf := out[site]
			sf.Outages = append(sf.Outages, windows...)
			sortWindows(sf.Outages)
			out[site] = sf
		}
	}
	return out
}

// ChurnConfig drives GenChurn.
type ChurnConfig struct {
	// Seed drives the cycle draws.
	Seed int64
	// Sites are the churning sites, each with its own independent cycle.
	Sites []int
	// MeanUpSec and MeanDownSec are the mean lengths of the alternating
	// up/down phases (exponential, min 1s). MeanDownSec <= 0 yields an empty
	// schedule — churn off.
	MeanUpSec, MeanDownSec float64
	// HorizonSec bounds the schedule.
	HorizonSec float64
}

// GenChurn draws site join/leave cycles: each site alternates an
// exponentially-distributed up phase with a down phase (modelled as an MSS
// outage window), from time 0 to the horizon — transient grid membership,
// the "site churn" half of ROADMAP item 4. Sites are processed in the order
// given; each consumes its draws from the shared seeded stream.
func GenChurn(cfg ChurnConfig) map[int]SiteFaults {
	out := make(map[int]SiteFaults)
	if cfg.MeanDownSec <= 0 || cfg.HorizonSec <= 0 || len(cfg.Sites) == 0 {
		return out
	}
	up := cfg.MeanUpSec
	if up <= 0 {
		up = cfg.MeanDownSec
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, site := range cfg.Sites {
		var windows []Window
		t := rng.ExpFloat64() * up // first up phase
		for t < cfg.HorizonSec {
			down := rng.ExpFloat64() * cfg.MeanDownSec
			if down < 1 {
				down = 1
			}
			windows = append(windows, Window{Start: t, End: t + down})
			t += down
			t += rng.ExpFloat64() * up
		}
		sf := out[site]
		sf.Outages = append(sf.Outages, windows...)
		out[site] = sf
	}
	return out
}

// DiurnalConfig drives GenDiurnal.
type DiurnalConfig struct {
	// Seed drives the per-site phase offsets (sites in different time zones
	// peak at different times). 0 is a valid seed.
	Seed int64
	// Sites are the affected sites.
	Sites []int
	// PeriodSec is the cycle length (a simulated "day"). <= 0 yields an
	// empty schedule.
	PeriodSec float64
	// BusyFrac is the browned-out fraction of each period (0,1]; <= 0 yields
	// an empty schedule.
	BusyFrac float64
	// Factor is the transfer slowdown during the busy phase (>= 1).
	Factor float64
	// HorizonSec bounds the schedule.
	HorizonSec float64
	// PhaseJitter, when true, offsets each site's cycle by a seeded random
	// fraction of the period; otherwise all sites peak together.
	PhaseJitter bool
}

// GenDiurnal lays down periodic bandwidth brownouts: every PeriodSec, each
// site's transfers slow by Factor for BusyFrac of the period — the daily
// load peak of a shared WAN. Deterministic given the config; the only
// randomness is the optional per-site phase offset.
func GenDiurnal(cfg DiurnalConfig) map[int]SiteFaults {
	out := make(map[int]SiteFaults)
	if cfg.PeriodSec <= 0 || cfg.BusyFrac <= 0 || cfg.HorizonSec <= 0 || len(cfg.Sites) == 0 {
		return out
	}
	factor := cfg.Factor
	if factor < 1 {
		factor = 1
	}
	busy := cfg.BusyFrac
	if busy > 1 {
		busy = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, site := range cfg.Sites {
		phase := 0.0
		if cfg.PhaseJitter {
			phase = rng.Float64() * cfg.PeriodSec
		}
		var brownouts []Brownout
		for start := phase; start < cfg.HorizonSec; start += cfg.PeriodSec {
			brownouts = append(brownouts, Brownout{
				Window: Window{Start: start, End: start + busy*cfg.PeriodSec},
				Factor: factor,
			})
		}
		sf := out[site]
		sf.Brownouts = append(sf.Brownouts, brownouts...)
		out[site] = sf
	}
	return out
}

// MergeSites overlays src's schedules onto dst (appending windows site by
// site, keeping each list sorted by start) and returns dst, allocating it if
// nil. Compose generators with hand-written schedules:
//
//	sc.Sites = faults.MergeSites(faults.GenChurn(churn), faults.GenCorrelated(racks))
func MergeSites(dst, src map[int]SiteFaults) map[int]SiteFaults {
	if dst == nil {
		dst = make(map[int]SiteFaults)
	}
	sites := make([]int, 0, len(src))
	for site := range src {
		sites = append(sites, site)
	}
	sort.Ints(sites)
	for _, site := range sites {
		sf := src[site]
		have := dst[site]
		have.Outages = append(have.Outages, sf.Outages...)
		have.LinkDown = append(have.LinkDown, sf.LinkDown...)
		have.Brownouts = append(have.Brownouts, sf.Brownouts...)
		sortWindows(have.Outages)
		sortWindows(have.LinkDown)
		sortBrownouts(have.Brownouts)
		dst[site] = have
	}
	return dst
}

func sortBrownouts(bs []Brownout) {
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].Start != bs[j].Start { //fbvet:allow floateq — schedule endpoints are exact config values
			return bs[i].Start < bs[j].Start
		}
		return bs[i].End < bs[j].End
	})
}

func sortWindows(ws []Window) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Start != ws[j].Start { //fbvet:allow floateq — schedule endpoints are exact config values
			return ws[i].Start < ws[j].Start
		}
		return ws[i].End < ws[j].End
	})
}
