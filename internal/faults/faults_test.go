package faults

import (
	"math"
	"math/rand"
	"testing"
)

func mustInjector(t *testing.T, sc Scenario) *Injector {
	t.Helper()
	in, err := NewInjector(sc)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestZeroScenarioIsNoFaults(t *testing.T) {
	in := mustInjector(t, Scenario{})
	for _, at := range []float64{0, 1, 1e6} {
		if !in.Up(0, at) || !in.Up(42, at) {
			t.Errorf("zero scenario reports a site down at %v", at)
		}
		if got := in.NextUp(3, at); got != at {
			t.Errorf("NextUp(%v) = %v, want identity", at, got)
		}
		if got := in.Slowdown(0, at); got != 1 {
			t.Errorf("Slowdown(%v) = %v, want 1", at, got)
		}
	}
	for i := 0; i < 100; i++ {
		if in.TransferFails() {
			t.Fatal("zero-probability transfer failed")
		}
	}
	if draws, failures := in.Draws(); draws != 0 || failures != 0 {
		t.Errorf("zero-probability scenario consumed RNG draws: %d/%d", draws, failures)
	}
	if in.Retry().MaxAttempts != DefaultRetryPolicy().MaxAttempts {
		t.Errorf("zero retry policy not defaulted: %+v", in.Retry())
	}
	if in.Scenario().MaxJobAttempts != 1 {
		t.Errorf("MaxJobAttempts not defaulted: %d", in.Scenario().MaxJobAttempts)
	}
}

func TestWindowsAndNextUp(t *testing.T) {
	in := mustInjector(t, Scenario{Sites: map[int]SiteFaults{
		1: {
			Outages:  []Window{{Start: 10, End: 20}, {Start: 19, End: 25}},
			LinkDown: []Window{{Start: 24, End: 30}},
		},
	}})
	if !in.Up(1, 9.99) || in.Up(1, 10) || in.Up(1, 24.5) || !in.Up(1, 30) {
		t.Error("window membership wrong (intervals are half-open)")
	}
	if in.SiteUp(1, 15) {
		t.Error("SiteUp inside outage")
	}
	if !in.LinkUp(1, 15) {
		t.Error("LinkUp false outside link window")
	}
	// Chained windows: 10→20 is inside 19–25, 25 inside link-down 24–30.
	if got := in.NextUp(1, 12); got != 30 {
		t.Errorf("NextUp(12) = %v, want 30 (chained windows)", got)
	}
	// Other sites are unaffected.
	if !in.Up(0, 15) {
		t.Error("unconfigured site down")
	}
}

func TestSlowdownCompounds(t *testing.T) {
	in := mustInjector(t, Scenario{Sites: map[int]SiteFaults{
		0: {Brownouts: []Brownout{
			{Window: Window{Start: 0, End: 100}, Factor: 2},
			{Window: Window{Start: 50, End: 60}, Factor: 3},
		}},
	}})
	if got := in.Slowdown(0, 10); got != 2 {
		t.Errorf("Slowdown(10) = %v, want 2", got)
	}
	if got := in.Slowdown(0, 55); got != 6 {
		t.Errorf("Slowdown(55) = %v, want 6 (compounded)", got)
	}
	if got := in.Slowdown(0, 200); got != 1 {
		t.Errorf("Slowdown(200) = %v, want 1", got)
	}
}

func TestTransferFailsDeterministic(t *testing.T) {
	sc := Scenario{Seed: 7, TransferFailureProb: 0.3}
	a, b := mustInjector(t, sc), mustInjector(t, sc)
	sawFailure := false
	for i := 0; i < 500; i++ {
		fa, fb := a.TransferFails(), b.TransferFails()
		if fa != fb {
			t.Fatalf("draw %d diverges between same-seed injectors", i)
		}
		sawFailure = sawFailure || fa
	}
	if !sawFailure {
		t.Error("probability 0.3 produced no failures in 500 draws")
	}
	draws, failures := a.Draws()
	if draws != 500 || failures == 0 || failures == 500 {
		t.Errorf("draws=%d failures=%d", draws, failures)
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelaySec: 1, MaxDelaySec: 8, Multiplier: 2, JitterFrac: 0}
	for i, want := range []float64{1, 2, 4, 8, 8, 8} {
		if got := p.Backoff(i, nil); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, want)
		}
	}
	p.JitterFrac = 0.5
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		d := p.Backoff(0, rng)
		if d < 0.5 || d > 1.5 {
			t.Fatalf("jittered backoff %v outside [0.5, 1.5]", d)
		}
	}
	// Same seed, same jitter sequence.
	r1, r2 := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if p.Backoff(i%4, r1) != p.Backoff(i%4, r2) {
			t.Fatal("jitter not reproducible from the seed")
		}
	}
}

func TestDowntimeSeconds(t *testing.T) {
	in := mustInjector(t, Scenario{Sites: map[int]SiteFaults{
		2: {
			Outages:  []Window{{Start: 10, End: 20}, {Start: 15, End: 25}}, // overlap: 10–25
			LinkDown: []Window{{Start: 40, End: 50}, {Start: 90, End: 200}},
		},
	}})
	if got := in.DowntimeSeconds(2, 100); math.Abs(got-35) > 1e-12 {
		t.Errorf("DowntimeSeconds = %v, want 35 (15 merged + 10 + 10 clipped)", got)
	}
	if got := in.DowntimeSeconds(2, 0); got != 0 {
		t.Errorf("zero horizon downtime = %v", got)
	}
	if got := in.DowntimeSeconds(0, 100); got != 0 {
		t.Errorf("unconfigured site downtime = %v", got)
	}
}

func TestValidation(t *testing.T) {
	bad := []Scenario{
		{TransferFailureProb: -0.1},
		{TransferFailureProb: 1},
		{StageBudgetSec: -1},
		{MaxJobAttempts: -2},
		{Retry: RetryPolicy{MaxAttempts: 0, BaseDelaySec: 1, Multiplier: 2}},
		{Retry: RetryPolicy{MaxAttempts: 2, BaseDelaySec: -1, Multiplier: 2}},
		{Retry: RetryPolicy{MaxAttempts: 2, Multiplier: 0.5}},
		{Retry: RetryPolicy{MaxAttempts: 2, Multiplier: 2, JitterFrac: 2}},
		{Sites: map[int]SiteFaults{0: {Outages: []Window{{Start: 5, End: 1}}}}},
		{Sites: map[int]SiteFaults{0: {LinkDown: []Window{{Start: 5, End: 1}}}}},
		{Sites: map[int]SiteFaults{0: {Brownouts: []Brownout{{Window: Window{Start: 0, End: 1}, Factor: 0.5}}}}},
	}
	for i, sc := range bad {
		if _, err := NewInjector(sc); err == nil {
			t.Errorf("scenario %d accepted: %+v", i, sc)
		}
	}
	if _, err := NewInjector(Scenario{TransferFailureProb: 0.5, StageBudgetSec: 100, MaxJobAttempts: 3}); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}
