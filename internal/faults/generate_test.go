package faults

import (
	"math"
	"reflect"
	"testing"
)

// scenarioFrom wraps generated schedules into a Scenario and asserts it
// validates — every generator's contract.
func scenarioFrom(t *testing.T, sites map[int]SiteFaults) Scenario {
	t.Helper()
	sc := Scenario{Sites: sites}
	if err := sc.Validate(); err != nil {
		t.Fatalf("generated scenario fails Validate: %v", err)
	}
	return sc
}

func TestGenCorrelatedDeterministicAndShared(t *testing.T) {
	cfg := CorrelatedConfig{
		Seed:            7,
		Groups:          [][]int{{1, 2}, {3}},
		OutagesPerGroup: 3,
		MeanOutageSec:   50,
		HorizonSec:      1000,
	}
	a := GenCorrelated(cfg)
	b := GenCorrelated(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different schedules")
	}
	scenarioFrom(t, a)
	// Sites in one rack group share every window — that is what "correlated"
	// means here.
	if !reflect.DeepEqual(a[1].Outages, a[2].Outages) {
		t.Errorf("group members differ: %v vs %v", a[1].Outages, a[2].Outages)
	}
	if len(a[3].Outages) != 3 {
		t.Errorf("site 3 outages = %d, want 3", len(a[3].Outages))
	}
	// Groups draw independently: site 3's windows differ from the group's.
	if reflect.DeepEqual(a[1].Outages, a[3].Outages) {
		t.Error("independent groups drew identical windows")
	}
	for site, sf := range map[int]SiteFaults{1: a[1], 3: a[3]} {
		for i, w := range sf.Outages {
			if w.End-w.Start < 1 {
				t.Errorf("site %d window %d shorter than the 1s floor: %+v", site, i, w)
			}
			if i > 0 && sf.Outages[i-1].Start > w.Start {
				t.Errorf("site %d windows unsorted", site)
			}
		}
	}

	// Different seed, different schedule.
	cfg.Seed = 8
	if reflect.DeepEqual(a, GenCorrelated(cfg)) {
		t.Error("different seeds drew identical schedules")
	}
}

func TestGenCorrelatedZeroRateEmpty(t *testing.T) {
	for name, cfg := range map[string]CorrelatedConfig{
		"no outages": {Seed: 1, Groups: [][]int{{0}}, HorizonSec: 100},
		"no horizon": {Seed: 1, Groups: [][]int{{0}}, OutagesPerGroup: 2},
		"no groups":  {Seed: 1, OutagesPerGroup: 2, HorizonSec: 100},
	} {
		if got := GenCorrelated(cfg); len(got) != 0 {
			t.Errorf("%s: schedule = %v, want empty", name, got)
		}
	}
}

func TestGenChurnCyclesWithinHorizon(t *testing.T) {
	cfg := ChurnConfig{
		Seed: 11, Sites: []int{0, 2},
		MeanUpSec: 100, MeanDownSec: 30, HorizonSec: 2000,
	}
	a := GenChurn(cfg)
	if !reflect.DeepEqual(a, GenChurn(cfg)) {
		t.Fatal("same seed, different schedules")
	}
	scenarioFrom(t, a)
	for _, site := range cfg.Sites {
		ws := a[site].Outages
		if len(ws) == 0 {
			t.Fatalf("site %d never churned over a 20-cycle horizon", site)
		}
		for i, w := range ws {
			if w.Start >= cfg.HorizonSec {
				t.Errorf("site %d window starts past horizon: %+v", site, w)
			}
			if w.End-w.Start < 1 {
				t.Errorf("site %d down phase under the 1s floor: %+v", site, w)
			}
			// Cycles alternate: windows are disjoint and strictly ordered.
			if i > 0 && ws[i-1].End > w.Start {
				t.Errorf("site %d down phases overlap: %+v then %+v", site, ws[i-1], w)
			}
		}
	}
	// Churn off -> empty schedule (bit-identity hook).
	cfg.MeanDownSec = 0
	if got := GenChurn(cfg); len(got) != 0 {
		t.Errorf("zero-rate churn = %v, want empty", got)
	}
}

func TestGenDiurnalPeriodicBrownouts(t *testing.T) {
	cfg := DiurnalConfig{
		Sites: []int{0}, PeriodSec: 100, BusyFrac: 0.25, Factor: 3, HorizonSec: 350,
	}
	a := GenDiurnal(cfg)
	scenarioFrom(t, a)
	bs := a[0].Brownouts
	want := []Brownout{
		{Window: Window{Start: 0, End: 25}, Factor: 3},
		{Window: Window{Start: 100, End: 125}, Factor: 3},
		{Window: Window{Start: 200, End: 225}, Factor: 3},
		{Window: Window{Start: 300, End: 325}, Factor: 3},
	}
	if !reflect.DeepEqual(bs, want) {
		t.Errorf("brownouts = %+v, want %+v", bs, want)
	}

	// Phase jitter shifts cycles but keeps the schedule valid and seeded.
	cfg.Seed, cfg.PhaseJitter = 5, true
	j := GenDiurnal(cfg)
	if !reflect.DeepEqual(j, GenDiurnal(cfg)) {
		t.Fatal("same seed, different jittered schedules")
	}
	scenarioFrom(t, j)
	if j[0].Brownouts[0].Start <= 0 {
		t.Errorf("jittered phase = %v, want > 0 for this seed", j[0].Brownouts[0].Start)
	}

	// A factor under 1 is clamped up, never invalid.
	cfg.Factor = 0.5
	scenarioFrom(t, GenDiurnal(cfg))

	// Period off -> empty.
	cfg.PeriodSec = 0
	if got := GenDiurnal(cfg); len(got) != 0 {
		t.Errorf("zero-period diurnal = %v, want empty", got)
	}
}

func TestMergeSitesComposes(t *testing.T) {
	churn := map[int]SiteFaults{
		1: {Outages: []Window{{Start: 50, End: 60}}},
	}
	racks := map[int]SiteFaults{
		1: {Outages: []Window{{Start: 10, End: 20}}, LinkDown: []Window{{Start: 5, End: 7}}},
		2: {Brownouts: []Brownout{{Window: Window{Start: 0, End: 9}, Factor: 2}}},
	}
	got := MergeSites(churn, racks)
	if len(got) != 2 {
		t.Fatalf("merged sites = %d, want 2", len(got))
	}
	// Site 1's outages from both inputs, sorted by start.
	wantOut := []Window{{Start: 10, End: 20}, {Start: 50, End: 60}}
	if !reflect.DeepEqual(got[1].Outages, wantOut) {
		t.Errorf("site 1 outages = %v, want %v", got[1].Outages, wantOut)
	}
	if len(got[1].LinkDown) != 1 || len(got[2].Brownouts) != 1 {
		t.Errorf("merged = %+v", got)
	}
	// Nil dst allocates.
	if m := MergeSites(nil, racks); len(m) != 2 {
		t.Errorf("nil-dst merge = %+v", m)
	}
	scenarioFrom(t, got)
}

// --- Window / nextClear / NextUp edge cases (satellite: schedule corner cases).

func TestNextUpOverlappingAndAbuttingWindows(t *testing.T) {
	in, err := NewInjector(Scenario{Sites: map[int]SiteFaults{
		0: {
			// Overlapping outages [10,30) and [20,50); an abutting link-down
			// [50,60) extends the dark span without a gap.
			Outages:  []Window{{Start: 10, End: 30}, {Start: 20, End: 50}},
			LinkDown: []Window{{Start: 50, End: 60}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// nextClear must chase through the chain regardless of which window t
	// lands in first.
	for _, at := range []float64{10, 15, 25, 49, 50, 59} {
		if up := in.NextUp(0, at); up != 60 {
			t.Errorf("NextUp(%v) = %v, want 60 across the merged chain", at, up)
		}
	}
	if up := in.NextUp(0, 60); up != 60 {
		t.Errorf("NextUp at the boundary = %v, want 60 (half-open windows)", up)
	}
	if up := in.NextUp(0, 5); up != 5 {
		t.Errorf("NextUp before the chain = %v, want 5", up)
	}
	// SiteNextUp only consults MSS outages: link-down alone does not hold it.
	if up := in.SiteNextUp(0, 55); up != 55 {
		t.Errorf("SiteNextUp inside link-down = %v, want 55", up)
	}

	// The merged unusable view joins all three into one interval.
	want := []Window{{Start: 10, End: 60}}
	if got := in.UnusableWindows(0); !reflect.DeepEqual(got, want) {
		t.Errorf("UnusableWindows = %v, want %v", got, want)
	}
}

func TestNextUpNeverUpSentinel(t *testing.T) {
	// End = +Inf models a site that left the grid for good: NextUp must
	// return the +Inf sentinel, not a schedulable instant.
	in, err := NewInjector(Scenario{Sites: map[int]SiteFaults{
		3: {Outages: []Window{{Start: 100, End: math.Inf(1)}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if up := in.NextUp(3, 150); !math.IsInf(up, 1) {
		t.Errorf("NextUp inside a terminal outage = %v, want +Inf", up)
	}
	if up := in.NextUp(3, 50); up != 50 {
		t.Errorf("NextUp before the terminal outage = %v, want 50", up)
	}
	if !in.Up(3, 50) || in.Up(3, 1e12) {
		t.Error("Up disagrees with the terminal window")
	}
	// The infinite window flows through the merged schedule too.
	if ws := in.UnusableWindows(3); len(ws) != 1 || !math.IsInf(ws[0].End, 1) {
		t.Errorf("UnusableWindows = %v, want one terminal window", ws)
	}
}

func TestDowntimeClippedAtHorizon(t *testing.T) {
	in, err := NewInjector(Scenario{Sites: map[int]SiteFaults{
		0: {Outages: []Window{{Start: -10, End: 5}, {Start: 90, End: 200}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// [-10,5) clips to [0,5) = 5s; [90,200) clips to [90,100) = 10s.
	if d := in.DowntimeSeconds(0, 100); d != 15 {
		t.Errorf("clipped downtime = %v, want 15", d)
	}
	if d := in.DowntimeSeconds(0, 0); d != 0 {
		t.Errorf("zero-horizon downtime = %v", d)
	}
}

func TestDownWithin(t *testing.T) {
	in, err := NewInjector(Scenario{Sites: map[int]SiteFaults{
		1: {Outages: []Window{{Start: 100, End: 150}}},
		2: {LinkDown: []Window{{Start: 40, End: 60}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		site          int
		from, horizon float64
		want          bool
	}{
		{1, 0, 50, false},                                          // horizon ends at 50, outage starts at 100
		{1, 0, 150, true},                                          // lookahead reaches into the outage
		{1, 60, 41, true},                                          // [60,101) clips the outage's first second
		{1, 60, 40, false},                                         // [60,100) stops just short (half-open)
		{1, 120, 10, true},                                         // already inside the outage
		{1, 150, 1000, false} /* outage over */, {2, 30, 15, true}, // link-down counts as down
		{2, 45, 0, true},  // zero horizon degrades to !Up(from)
		{2, 65, 0, false}, // after the window, zero horizon, up
	}
	for _, c := range cases {
		if got := in.DownWithin(c.site, c.from, c.horizon); got != c.want {
			t.Errorf("DownWithin(site=%d, from=%v, horizon=%v) = %v, want %v",
				c.site, c.from, c.horizon, got, c.want)
		}
	}
}
