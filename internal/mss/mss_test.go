package mss

import (
	"math"
	"testing"

	"fbcache/internal/bundle"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "a", LatencySec: -1, BandwidthBps: 1, Channels: 1},
		{Name: "b", LatencySec: 0, BandwidthBps: 0, Channels: 1},
		{Name: "c", LatencySec: 0, BandwidthBps: 1, Channels: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%q: accepted", c.Name)
		}
		if _, err := NewSystem(c); err == nil {
			t.Errorf("%q: NewSystem accepted", c.Name)
		}
	}
}

func TestTransferSeconds(t *testing.T) {
	c := Config{LatencySec: 2, BandwidthBps: 100, Channels: 1}
	if got := c.TransferSeconds(500); math.Abs(got-7) > 1e-12 {
		t.Errorf("TransferSeconds = %v, want 7 (2 + 500/100)", got)
	}
	if got := c.TransferSeconds(0); got != 2 {
		t.Errorf("zero-size transfer = %v, want latency only", got)
	}
}

func TestFetchSingleChannelQueues(t *testing.T) {
	s, err := NewSystem(Config{Name: "one", LatencySec: 1, BandwidthBps: 100, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two 100-byte fetches at t=0: each takes 2s; the second queues.
	f1 := s.Fetch(0, 100)
	f2 := s.Fetch(0, 100)
	if f1 != 2 || f2 != 4 {
		t.Errorf("finishes = %v, %v; want 2, 4", f1, f2)
	}
	// A fetch after the backlog clears starts immediately.
	f3 := s.Fetch(10, 100)
	if f3 != 12 {
		t.Errorf("f3 = %v, want 12", f3)
	}
}

func TestFetchMultiChannelParallel(t *testing.T) {
	s, _ := NewSystem(Config{Name: "two", LatencySec: 1, BandwidthBps: 100, Channels: 2})
	f1 := s.Fetch(0, 100)
	f2 := s.Fetch(0, 100)
	f3 := s.Fetch(0, 100)
	if f1 != 2 || f2 != 2 {
		t.Errorf("parallel finishes = %v, %v; want 2, 2", f1, f2)
	}
	if f3 != 4 {
		t.Errorf("third fetch = %v, want 4 (queued)", f3)
	}
}

func TestFetchBundleBottleneck(t *testing.T) {
	s, _ := NewSystem(Config{Name: "b", LatencySec: 0, BandwidthBps: 1, Channels: 4})
	sizeOf := func(f bundle.FileID) bundle.Size { return bundle.Size(f) }
	// Files 1,2,3 take 1,2,3 seconds on separate channels: staging = 3.
	finish := s.FetchBundle(0, bundle.New(1, 2, 3), sizeOf)
	if finish != 3 {
		t.Errorf("FetchBundle = %v, want 3", finish)
	}
	// Empty bundle stages instantly.
	if got := s.FetchBundle(5, bundle.New(), sizeOf); got != 5 {
		t.Errorf("empty bundle = %v, want 5", got)
	}
}

func TestStatsAndUtilization(t *testing.T) {
	s, _ := NewSystem(Config{Name: "u", LatencySec: 0, BandwidthBps: 100, Channels: 2})
	s.Fetch(0, 100) // 1s busy
	s.Fetch(0, 300) // 3s busy
	n, bytes, busy := s.Stats()
	if n != 2 || bytes != 400 || busy != 4 {
		t.Errorf("stats = %d %d %v", n, bytes, busy)
	}
	// Over a 4-second horizon with 2 channels: 4/(4*2) = 0.5.
	if got := s.Utilization(4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Utilization = %v", got)
	}
	if got := s.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v", got)
	}
}

// windowAvail is a test Availability: down during [downFrom, downTo), and a
// constant brownout factor afterwards.
type windowAvail struct {
	downFrom, downTo float64
	factor           float64
}

func (a windowAvail) NextUp(at float64) float64 {
	if at >= a.downFrom && at < a.downTo {
		return a.downTo
	}
	return at
}

func (a windowAvail) Slowdown(at float64) float64 {
	if a.factor > 0 {
		return a.factor
	}
	return 1
}

func TestFetchDefersPastOutage(t *testing.T) {
	s, _ := NewSystem(Config{Name: "o", LatencySec: 1, BandwidthBps: 100, Channels: 1})
	s.SetAvailability(windowAvail{downFrom: 0, downTo: 10})
	// Requested at t=2 inside the outage: starts at 10, finishes at 12.
	if got := s.Fetch(2, 100); got != 12 {
		t.Errorf("outage fetch = %v, want 12", got)
	}
	// The channel is now busy until 12; next transfer queues normally.
	if got := s.Fetch(2, 100); got != 14 {
		t.Errorf("queued fetch = %v, want 14", got)
	}
	// Clearing the availability restores the plain model.
	s.SetAvailability(nil)
	if got := s.Fetch(20, 100); got != 22 {
		t.Errorf("post-clear fetch = %v, want 22", got)
	}
}

func TestFetchBrownoutStretchesDuration(t *testing.T) {
	s, _ := NewSystem(Config{Name: "b", LatencySec: 1, BandwidthBps: 100, Channels: 1})
	s.SetAvailability(windowAvail{factor: 3})
	// 2s service time tripled: 6s.
	if got := s.Fetch(0, 100); got != 6 {
		t.Errorf("brownout fetch = %v, want 6", got)
	}
	_, _, busy := s.Stats()
	if busy != 6 {
		t.Errorf("busy accounting = %v, want the stretched duration", busy)
	}
}

func TestFetchNegativeSizePanics(t *testing.T) {
	s, _ := NewSystem(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Fetch(0, -1)
}
