// Package mss models the Mass Storage Systems behind an SRM (§1, §2): the
// tape/disk archives files are fetched from on a cache miss. A System has a
// fixed number of transfer channels (tape drives / movers); each fetch pays
// a per-transfer latency (mount + seek) plus size/bandwidth, and queues for
// the earliest available channel.
//
// Simulation time is float64 seconds; the model is used by the
// discrete-event simulator in internal/simulate and the cost model in
// internal/grid.
package mss

import (
	"fmt"

	"fbcache/internal/bundle"
)

// Config describes one mass storage system.
type Config struct {
	// Name labels the system in output ("hpss-local", "remote-tape", ...).
	Name string
	// LatencySec is the fixed per-transfer cost (mount, robot, seek).
	LatencySec float64
	// BandwidthBps is the per-channel transfer rate in bytes/second.
	BandwidthBps float64
	// Channels is the number of concurrent transfers (drives). Must be >= 1.
	Channels int
}

// DefaultConfig models a modest HPSS-class archive: 10s mount latency,
// 50 MB/s per channel, 4 channels.
func DefaultConfig() Config {
	return Config{Name: "mss", LatencySec: 10, BandwidthBps: 50e6, Channels: 4}
}

// Validate reports the first problem with the config.
func (c Config) Validate() error {
	switch {
	case c.LatencySec < 0:
		return fmt.Errorf("mss %q: negative latency", c.Name)
	case c.BandwidthBps <= 0:
		return fmt.Errorf("mss %q: bandwidth must be positive", c.Name)
	case c.Channels < 1:
		return fmt.Errorf("mss %q: need at least one channel", c.Name)
	}
	return nil
}

// TransferSeconds reports the service time (excluding channel queueing) of
// one transfer of the given size.
func (c Config) TransferSeconds(size bundle.Size) float64 {
	return c.LatencySec + float64(size)/c.BandwidthBps
}

// Availability lets a fault injector gate and slow a System's transfers:
// NextUp defers transfer starts out of outage windows (drives offline,
// robot down) and Slowdown scales transfer durations during bandwidth
// brownouts. Nil means always up at full speed. Implementations must be
// pure functions of simulation time — never the wall clock — so runs stay
// reproducible.
type Availability interface {
	// NextUp returns the earliest time >= at the system may start a
	// transfer.
	NextUp(at float64) float64
	// Slowdown returns the duration multiplier (>= 1) for a transfer
	// starting at time at.
	Slowdown(at float64) float64
}

// System is a stateful MSS instance inside a simulation: it tracks when each
// channel becomes free so concurrent fetches queue realistically.
type System struct {
	cfg   Config
	free  []float64 // per-channel next-available time
	avail Availability

	transfers int64
	bytes     bundle.Size
	busy      float64 // total channel-busy seconds
}

// NewSystem builds a System from a validated config.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, free: make([]float64, cfg.Channels)}, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// SetAvailability attaches a fault schedule (see Availability). Call before
// the first Fetch; a nil value restores the always-up model.
func (s *System) SetAvailability(a Availability) { s.avail = a }

// Fetch schedules one transfer requested at time now and returns its finish
// time. The transfer starts when the earliest channel frees (or
// immediately), deferred past any outage window and stretched by any
// brownout in effect at its start, and occupies that channel for
// LatencySec + size/bandwidth (times the brownout factor). An outage or
// brownout beginning mid-transfer does not interrupt it — the fault model
// gates starts, not completions.
func (s *System) Fetch(now float64, size bundle.Size) (finish float64) {
	if size < 0 {
		panic(fmt.Sprintf("mss: negative transfer size %d", size))
	}
	// Earliest-available channel.
	ch := 0
	for i := 1; i < len(s.free); i++ {
		if s.free[i] < s.free[ch] {
			ch = i
		}
	}
	start := now
	if s.free[ch] > start {
		start = s.free[ch]
	}
	dur := s.cfg.TransferSeconds(size)
	if s.avail != nil {
		start = s.avail.NextUp(start)
		dur *= s.avail.Slowdown(start)
	}
	finish = start + dur
	s.free[ch] = finish

	s.transfers++
	s.bytes += size
	s.busy += dur
	return finish
}

// FetchBundle schedules transfers for all files of b (sizes via sizeOf) and
// returns the time by which every file has arrived — the staging time of a
// file-bundle.
func (s *System) FetchBundle(now float64, b bundle.Bundle, sizeOf bundle.SizeFunc) float64 {
	finish := now
	for _, f := range b {
		if t := s.Fetch(now, sizeOf(f)); t > finish {
			finish = t
		}
	}
	return finish
}

// Stats reports cumulative transfer counts, bytes moved and channel-busy
// seconds.
func (s *System) Stats() (transfers int64, bytes bundle.Size, busySeconds float64) {
	return s.transfers, s.bytes, s.busy
}

// Utilization reports mean channel utilization over [0, horizon].
func (s *System) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return s.busy / (horizon * float64(s.cfg.Channels))
}
