// Package mss models the Mass Storage Systems behind an SRM (§1, §2): the
// tape/disk archives files are fetched from on a cache miss. A System has a
// fixed number of transfer channels (tape drives / movers); each fetch pays
// a per-transfer latency (mount + seek) plus size/bandwidth, and queues for
// the earliest available channel.
//
// Simulation time is float64 seconds; the model is used by the
// discrete-event simulator in internal/simulate and the cost model in
// internal/grid.
package mss

import (
	"fmt"

	"fbcache/internal/bundle"
)

// Config describes one mass storage system.
type Config struct {
	// Name labels the system in output ("hpss-local", "remote-tape", ...).
	Name string
	// LatencySec is the fixed per-transfer cost (mount, robot, seek).
	LatencySec float64
	// BandwidthBps is the per-channel transfer rate in bytes/second.
	BandwidthBps float64
	// Channels is the number of concurrent transfers (drives). Must be >= 1.
	Channels int
}

// DefaultConfig models a modest HPSS-class archive: 10s mount latency,
// 50 MB/s per channel, 4 channels.
func DefaultConfig() Config {
	return Config{Name: "mss", LatencySec: 10, BandwidthBps: 50e6, Channels: 4}
}

// Validate reports the first problem with the config.
func (c Config) Validate() error {
	switch {
	case c.LatencySec < 0:
		return fmt.Errorf("mss %q: negative latency", c.Name)
	case c.BandwidthBps <= 0:
		return fmt.Errorf("mss %q: bandwidth must be positive", c.Name)
	case c.Channels < 1:
		return fmt.Errorf("mss %q: need at least one channel", c.Name)
	}
	return nil
}

// TransferSeconds reports the service time (excluding channel queueing) of
// one transfer of the given size.
func (c Config) TransferSeconds(size bundle.Size) float64 {
	return c.LatencySec + float64(size)/c.BandwidthBps
}

// System is a stateful MSS instance inside a simulation: it tracks when each
// channel becomes free so concurrent fetches queue realistically.
type System struct {
	cfg  Config
	free []float64 // per-channel next-available time

	transfers int64
	bytes     bundle.Size
	busy      float64 // total channel-busy seconds
}

// NewSystem builds a System from a validated config.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, free: make([]float64, cfg.Channels)}, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Fetch schedules one transfer requested at time now and returns its finish
// time. The transfer starts when the earliest channel frees (or immediately)
// and occupies that channel for LatencySec + size/bandwidth.
func (s *System) Fetch(now float64, size bundle.Size) (finish float64) {
	if size < 0 {
		panic(fmt.Sprintf("mss: negative transfer size %d", size))
	}
	// Earliest-available channel.
	ch := 0
	for i := 1; i < len(s.free); i++ {
		if s.free[i] < s.free[ch] {
			ch = i
		}
	}
	start := now
	if s.free[ch] > start {
		start = s.free[ch]
	}
	dur := s.cfg.TransferSeconds(size)
	finish = start + dur
	s.free[ch] = finish

	s.transfers++
	s.bytes += size
	s.busy += dur
	return finish
}

// FetchBundle schedules transfers for all files of b (sizes via sizeOf) and
// returns the time by which every file has arrived — the staging time of a
// file-bundle.
func (s *System) FetchBundle(now float64, b bundle.Bundle, sizeOf bundle.SizeFunc) float64 {
	finish := now
	for _, f := range b {
		if t := s.Fetch(now, sizeOf(f)); t > finish {
			finish = t
		}
	}
	return finish
}

// Stats reports cumulative transfer counts, bytes moved and channel-busy
// seconds.
func (s *System) Stats() (transfers int64, bytes bundle.Size, busySeconds float64) {
	return s.transfers, s.bytes, s.busy
}

// Utilization reports mean channel utilization over [0, horizon].
func (s *System) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return s.busy / (horizon * float64(s.cfg.Channels))
}
