// Package history implements the L(R) request-history structure from the
// paper (§3): for every distinct bundle ever requested it tracks a value
// v(r) (by default a popularity counter), and for every file the degree
// d(f) — the number of distinct requests that need it.
//
// The paper's §5.2 "Request History Length" experiments truncate the
// candidate set handed to OptCacheSelect "while obtaining the request
// popularity and the degree of file sharing from the global history".
// History therefore always maintains global values and degrees cheaply, and
// exposes Candidates with a pluggable truncation policy.
package history

import (
	"fmt"
	"slices"

	"fbcache/internal/bundle"
	"fbcache/internal/floats"
)

// Entry is one distinct request in the history.
type Entry struct {
	Bundle   bundle.Bundle
	Value    float64 // v(r): popularity counter or externally supplied weight
	LastSeen uint64  // logical time of most recent observation
	Seen     int64   // number of observations
}

// Truncation selects which history entries are offered to the selection
// algorithm. Global degrees and values are unaffected.
type Truncation int

const (
	// Full offers every request ever seen (the paper's default model).
	Full Truncation = iota
	// Window offers only the Limit most-recently-seen distinct requests.
	Window
	// TopValue offers only the Limit highest-value distinct requests.
	TopValue
	// CacheResident restricts candidates to requests currently supported by
	// the cache — the paper's §5.3 choice ("subsequent simulations were run
	// using only the truncated history limited to the requests in the
	// cache"), keeping per-admission cost constant. The filtering needs the
	// cache, so it happens in the policy (internal/core); History.Candidates
	// itself returns the full set under this mode.
	CacheResident
)

func (t Truncation) String() string {
	switch t {
	case Full:
		return "full"
	case Window:
		return "window"
	case TopValue:
		return "top-value"
	case CacheResident:
		return "cache-resident"
	}
	return fmt.Sprintf("Truncation(%d)", int(t))
}

// Config controls History behaviour.
type Config struct {
	Truncation Truncation
	// Limit bounds the candidate set for Window/TopValue. <= 0 means no bound.
	Limit int
	// LocalDegrees, if set, computes file degrees over the truncated candidate
	// set instead of the global history. The paper uses global degrees; this
	// switch exists for the ablation study (DESIGN.md §4.1).
	LocalDegrees bool
}

// History is the L(R) structure. It is not safe for concurrent use; wrap it
// (as internal/srm does) when sharing across goroutines.
type History struct {
	cfg     Config
	entries map[string]*Entry
	order   []*Entry // insertion/recency bookkeeping for Window truncation
	clock   uint64

	// degree is d(f) stored densely, indexed by FileID. Catalog IDs are
	// sequential small integers, so a slice turns the per-file degree lookup
	// on the selection hot path (every s'(f) = s(f)/d(f) term) from a map
	// probe into a bounds-checked load. Entries at or past len(degree) have
	// degree 0 (never seen).
	degree []int32

	// keyBuf is the scratch key buffer: lookups probe entries with
	// string(keyBuf) (a no-copy map access), and only inserts materialize
	// the string. dropScratch backs Decay's forget list. degFn is the one
	// DegreeFunc closure, built once so per-admission callers do not
	// allocate a fresh closure per call.
	keyBuf      []byte
	dropScratch []bundle.Bundle
	degFn       func(bundle.FileID) int
}

// New returns an empty history with the given configuration.
func New(cfg Config) *History {
	h := &History{
		cfg:     cfg,
		entries: make(map[string]*Entry),
	}
	h.degFn = func(f bundle.FileID) int {
		if i := int(f); i < len(h.degree) {
			if d := h.degree[i]; d > 0 {
				return int(d)
			}
		}
		return 1
	}
	return h
}

// Observe records one occurrence of b, incrementing its value by one, and
// returns the entry. This is the paper's "counter incremented by 1 each time
// this request appeared".
func (h *History) Observe(b bundle.Bundle) *Entry {
	return h.ObserveValued(b, 1)
}

// ObserveValued records one occurrence of b with the given value increment,
// supporting priority-weighted requests.
func (h *History) ObserveValued(b bundle.Bundle, delta float64) *Entry {
	h.clock++
	h.keyBuf = b.AppendKey(h.keyBuf[:0])
	e, ok := h.entries[string(h.keyBuf)]
	if !ok {
		e = &Entry{Bundle: b.Clone()}
		h.entries[string(h.keyBuf)] = e
		h.order = append(h.order, e)
		for _, f := range e.Bundle {
			h.degreeAdd(f, 1)
		}
	}
	e.Value += delta
	e.Seen++
	e.LastSeen = h.clock
	return e
}

// Lookup returns the entry for b, if any.
func (h *History) Lookup(b bundle.Bundle) (*Entry, bool) {
	h.keyBuf = b.AppendKey(h.keyBuf[:0])
	e, ok := h.entries[string(h.keyBuf)]
	return e, ok
}

// Len reports the number of distinct requests recorded.
func (h *History) Len() int { return len(h.entries) }

// Clock reports the logical time (total observations).
func (h *History) Clock() uint64 { return h.clock }

// Degree reports d(f): the number of distinct historical requests using f.
// Files never seen have degree 0.
func (h *History) Degree(f bundle.FileID) int {
	if i := int(f); i < len(h.degree) {
		return int(h.degree[i])
	}
	return 0
}

// degreeAdd adjusts d(f) by delta, growing the dense table on first sight of
// a new FileID and clamping at zero so an unmatched Forget cannot drive a
// degree negative.
func (h *History) degreeAdd(f bundle.FileID, delta int32) {
	i := int(f)
	if i >= len(h.degree) {
		h.degree = append(h.degree, make([]int32, i+1-len(h.degree))...)
	}
	if h.degree[i] += delta; h.degree[i] < 0 {
		h.degree[i] = 0
	}
}

// DegreeFunc returns the degree lookup as a closure, with a floor of 1 so the
// adjusted size s'(f) = s(f)/d(f) is defined even for unseen files. The same
// closure is returned on every call (it reads the live degree table), so
// per-admission callers allocate nothing.
func (h *History) DegreeFunc() func(bundle.FileID) int {
	return h.degFn
}

// MaxDegree reports d = max_f d(f), the constant in the paper's
// (1 − e^{−1/d}) approximation bound.
func (h *History) MaxDegree() int {
	max := int32(0)
	for _, d := range h.degree {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// Candidates returns the entries offered to the selection algorithm under
// the configured truncation, in unspecified order. The returned slice is
// freshly allocated; entries are shared (do not mutate).
func (h *History) Candidates() []*Entry {
	return h.CandidatesAppend(make([]*Entry, 0, len(h.order)))
}

// CandidatesAppend appends the truncated candidate set to dst and returns
// the extended slice — the allocation-free form of Candidates for
// per-admission callers (OptFileBundle) that reuse a scratch slice. Entries
// are shared (do not mutate).
func (h *History) CandidatesAppend(dst []*Entry) []*Entry {
	n := len(dst)
	dst = append(dst, h.order...)
	all := dst[n:]
	limit := h.cfg.Limit
	if limit <= 0 || limit >= len(all) || h.cfg.Truncation == Full {
		return dst
	}
	switch h.cfg.Truncation {
	case Window:
		// slices.SortFunc, not sort.Slice: the reflection-based swapper
		// allocates per admission. LastSeen is unique (one clock tick per
		// observation), so the comparator is total and the sort's
		// instability cannot reorder equals.
		slices.SortFunc(all, func(a, b *Entry) int {
			switch {
			case a.LastSeen > b.LastSeen:
				return -1
			case a.LastSeen < b.LastSeen:
				return 1
			}
			return 0
		})
	case TopValue:
		slices.SortFunc(all, func(a, b *Entry) int {
			// Decay multiplies values, so equal popularities can differ by
			// round-off; epsilon-compare so recency decides genuine ties
			// (LastSeen is unique, making the order total).
			if !floats.AlmostEqual(a.Value, b.Value) {
				if a.Value > b.Value {
					return -1
				}
				return 1
			}
			switch {
			case a.LastSeen > b.LastSeen:
				return -1
			case a.LastSeen < b.LastSeen:
				return 1
			}
			return 0
		})
	}
	return dst[:n+limit]
}

// CandidateDegreeFunc returns the degree function the selection algorithm
// should use: global degrees (the paper's choice) or degrees recomputed over
// the truncated candidate set when LocalDegrees is set.
func (h *History) CandidateDegreeFunc(candidates []*Entry) func(bundle.FileID) int {
	if !h.cfg.LocalDegrees {
		return h.DegreeFunc()
	}
	local := make(map[bundle.FileID]int)
	for _, e := range candidates {
		for _, f := range e.Bundle {
			local[f]++
		}
	}
	return func(f bundle.FileID) int {
		if d := local[f]; d > 0 {
			return d
		}
		return 1
	}
}

// Decay multiplies every request value by factor (0 < factor <= 1),
// implementing exponential aging of popularity. The paper's v(r) is a raw
// counter, which never forgets; a production SRM running for months needs
// old hot spots to fade so the cache can track workload drift. Entries
// whose value falls below floor are forgotten entirely (degrees updated).
func (h *History) Decay(factor, floor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("history: decay factor %v outside (0,1]", factor))
	}
	drop := h.dropScratch[:0]
	// Walk the order slice, not the entries map: the forget sequence below
	// edits h.order, so it must not depend on map iteration order.
	for _, e := range h.order {
		e.Value *= factor
		if e.Value < floor {
			drop = append(drop, e.Bundle)
		}
	}
	for _, b := range drop {
		h.Forget(b)
	}
	h.dropScratch = drop[:0]
}

// Forget removes b from the history entirely, decrementing file degrees.
// It reports whether the entry existed. Used by bounded-memory deployments.
func (h *History) Forget(b bundle.Bundle) bool {
	h.keyBuf = b.AppendKey(h.keyBuf[:0])
	e, ok := h.entries[string(h.keyBuf)]
	if !ok {
		return false
	}
	delete(h.entries, string(h.keyBuf))
	for _, f := range e.Bundle {
		h.degreeAdd(f, -1)
	}
	for i, o := range h.order {
		if o == e {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	return true
}

// Reset clears all state.
func (h *History) Reset() {
	h.entries = make(map[string]*Entry)
	clear(h.degree)
	h.order = h.order[:0]
	h.clock = 0
}
