// Package history implements the L(R) request-history structure from the
// paper (§3): for every distinct bundle ever requested it tracks a value
// v(r) (by default a popularity counter), and for every file the degree
// d(f) — the number of distinct requests that need it.
//
// The paper's §5.2 "Request History Length" experiments truncate the
// candidate set handed to OptCacheSelect "while obtaining the request
// popularity and the degree of file sharing from the global history".
// History therefore always maintains global values and degrees cheaply, and
// exposes Candidates with a pluggable truncation policy.
package history

import (
	"fmt"
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/floats"
)

// Entry is one distinct request in the history.
type Entry struct {
	Bundle   bundle.Bundle
	Value    float64 // v(r): popularity counter or externally supplied weight
	LastSeen uint64  // logical time of most recent observation
	Seen     int64   // number of observations
}

// Truncation selects which history entries are offered to the selection
// algorithm. Global degrees and values are unaffected.
type Truncation int

const (
	// Full offers every request ever seen (the paper's default model).
	Full Truncation = iota
	// Window offers only the Limit most-recently-seen distinct requests.
	Window
	// TopValue offers only the Limit highest-value distinct requests.
	TopValue
	// CacheResident restricts candidates to requests currently supported by
	// the cache — the paper's §5.3 choice ("subsequent simulations were run
	// using only the truncated history limited to the requests in the
	// cache"), keeping per-admission cost constant. The filtering needs the
	// cache, so it happens in the policy (internal/core); History.Candidates
	// itself returns the full set under this mode.
	CacheResident
)

func (t Truncation) String() string {
	switch t {
	case Full:
		return "full"
	case Window:
		return "window"
	case TopValue:
		return "top-value"
	case CacheResident:
		return "cache-resident"
	}
	return fmt.Sprintf("Truncation(%d)", int(t))
}

// Config controls History behaviour.
type Config struct {
	Truncation Truncation
	// Limit bounds the candidate set for Window/TopValue. <= 0 means no bound.
	Limit int
	// LocalDegrees, if set, computes file degrees over the truncated candidate
	// set instead of the global history. The paper uses global degrees; this
	// switch exists for the ablation study (DESIGN.md §4.1).
	LocalDegrees bool
}

// History is the L(R) structure. It is not safe for concurrent use; wrap it
// (as internal/srm does) when sharing across goroutines.
type History struct {
	cfg     Config
	entries map[string]*Entry
	order   []*Entry // insertion/recency bookkeeping for Window truncation
	degree  map[bundle.FileID]int
	clock   uint64
}

// New returns an empty history with the given configuration.
func New(cfg Config) *History {
	return &History{
		cfg:     cfg,
		entries: make(map[string]*Entry),
		degree:  make(map[bundle.FileID]int),
	}
}

// Observe records one occurrence of b, incrementing its value by one, and
// returns the entry. This is the paper's "counter incremented by 1 each time
// this request appeared".
func (h *History) Observe(b bundle.Bundle) *Entry {
	return h.ObserveValued(b, 1)
}

// ObserveValued records one occurrence of b with the given value increment,
// supporting priority-weighted requests.
func (h *History) ObserveValued(b bundle.Bundle, delta float64) *Entry {
	h.clock++
	key := b.Key()
	e, ok := h.entries[key]
	if !ok {
		e = &Entry{Bundle: b.Clone()}
		h.entries[key] = e
		h.order = append(h.order, e)
		for _, f := range e.Bundle {
			h.degree[f]++
		}
	}
	e.Value += delta
	e.Seen++
	e.LastSeen = h.clock
	return e
}

// Lookup returns the entry for b, if any.
func (h *History) Lookup(b bundle.Bundle) (*Entry, bool) {
	e, ok := h.entries[b.Key()]
	return e, ok
}

// Len reports the number of distinct requests recorded.
func (h *History) Len() int { return len(h.entries) }

// Clock reports the logical time (total observations).
func (h *History) Clock() uint64 { return h.clock }

// Degree reports d(f): the number of distinct historical requests using f.
// Files never seen have degree 0.
func (h *History) Degree(f bundle.FileID) int { return h.degree[f] }

// DegreeFunc returns the degree lookup as a closure, with a floor of 1 so the
// adjusted size s'(f) = s(f)/d(f) is defined even for unseen files.
func (h *History) DegreeFunc() func(bundle.FileID) int {
	return func(f bundle.FileID) int {
		if d := h.degree[f]; d > 0 {
			return d
		}
		return 1
	}
}

// MaxDegree reports d = max_f d(f), the constant in the paper's
// (1 − e^{−1/d}) approximation bound.
func (h *History) MaxDegree() int {
	max := 0
	for _, d := range h.degree {
		if d > max {
			max = d
		}
	}
	return max
}

// Candidates returns the entries offered to the selection algorithm under
// the configured truncation, in unspecified order. The returned slice is
// freshly allocated; entries are shared (do not mutate).
func (h *History) Candidates() []*Entry {
	all := make([]*Entry, 0, len(h.order))
	all = append(all, h.order...)
	limit := h.cfg.Limit
	if limit <= 0 || limit >= len(all) || h.cfg.Truncation == Full {
		return all
	}
	switch h.cfg.Truncation {
	case Window:
		sort.Slice(all, func(i, j int) bool { return all[i].LastSeen > all[j].LastSeen })
	case TopValue:
		sort.Slice(all, func(i, j int) bool {
			// Decay multiplies values, so equal popularities can differ by
			// round-off; epsilon-compare so recency decides genuine ties.
			if !floats.AlmostEqual(all[i].Value, all[j].Value) {
				return all[i].Value > all[j].Value
			}
			return all[i].LastSeen > all[j].LastSeen
		})
	}
	return all[:limit]
}

// CandidateDegreeFunc returns the degree function the selection algorithm
// should use: global degrees (the paper's choice) or degrees recomputed over
// the truncated candidate set when LocalDegrees is set.
func (h *History) CandidateDegreeFunc(candidates []*Entry) func(bundle.FileID) int {
	if !h.cfg.LocalDegrees {
		return h.DegreeFunc()
	}
	local := make(map[bundle.FileID]int)
	for _, e := range candidates {
		for _, f := range e.Bundle {
			local[f]++
		}
	}
	return func(f bundle.FileID) int {
		if d := local[f]; d > 0 {
			return d
		}
		return 1
	}
}

// Decay multiplies every request value by factor (0 < factor <= 1),
// implementing exponential aging of popularity. The paper's v(r) is a raw
// counter, which never forgets; a production SRM running for months needs
// old hot spots to fade so the cache can track workload drift. Entries
// whose value falls below floor are forgotten entirely (degrees updated).
func (h *History) Decay(factor, floor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("history: decay factor %v outside (0,1]", factor))
	}
	var drop []bundle.Bundle
	for _, e := range h.entries {
		e.Value *= factor
		if e.Value < floor {
			drop = append(drop, e.Bundle)
		}
	}
	for _, b := range drop {
		h.Forget(b)
	}
}

// Forget removes b from the history entirely, decrementing file degrees.
// It reports whether the entry existed. Used by bounded-memory deployments.
func (h *History) Forget(b bundle.Bundle) bool {
	key := b.Key()
	e, ok := h.entries[key]
	if !ok {
		return false
	}
	delete(h.entries, key)
	for _, f := range e.Bundle {
		if h.degree[f]--; h.degree[f] <= 0 {
			delete(h.degree, f)
		}
	}
	for i, o := range h.order {
		if o == e {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	return true
}

// Reset clears all state.
func (h *History) Reset() {
	h.entries = make(map[string]*Entry)
	h.degree = make(map[bundle.FileID]int)
	h.order = h.order[:0]
	h.clock = 0
}
