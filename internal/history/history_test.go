package history

import (
	"testing"
	"testing/quick"

	"fbcache/internal/bundle"
)

func TestObserveAccumulatesValue(t *testing.T) {
	h := New(Config{})
	b := bundle.New(1, 2, 3)
	e1 := h.Observe(b)
	if e1.Value != 1 || e1.Seen != 1 {
		t.Fatalf("first observe: value=%v seen=%d", e1.Value, e1.Seen)
	}
	e2 := h.Observe(bundle.New(3, 2, 1)) // same canonical bundle
	if e1 != e2 {
		t.Fatal("equal bundles created distinct entries")
	}
	if e2.Value != 2 || e2.Seen != 2 {
		t.Errorf("second observe: value=%v seen=%d", e2.Value, e2.Seen)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
	if h.Clock() != 2 {
		t.Errorf("Clock = %d", h.Clock())
	}
}

func TestObserveValued(t *testing.T) {
	h := New(Config{})
	e := h.ObserveValued(bundle.New(1), 5)
	h.ObserveValued(bundle.New(1), 2.5)
	if e.Value != 7.5 {
		t.Errorf("Value = %v, want 7.5", e.Value)
	}
}

func TestDegrees(t *testing.T) {
	h := New(Config{})
	h.Observe(bundle.New(1, 2))
	h.Observe(bundle.New(2, 3))
	h.Observe(bundle.New(2, 3)) // repeat: degree counts distinct requests
	h.Observe(bundle.New(3))

	wantDeg := map[bundle.FileID]int{1: 1, 2: 2, 3: 2}
	for f, w := range wantDeg {
		if got := h.Degree(f); got != w {
			t.Errorf("Degree(%d) = %d, want %d", f, got, w)
		}
	}
	if got := h.Degree(99); got != 0 {
		t.Errorf("Degree(unseen) = %d", got)
	}
	df := h.DegreeFunc()
	if df(99) != 1 {
		t.Errorf("DegreeFunc floor = %d, want 1", df(99))
	}
	if h.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", h.MaxDegree())
	}
}

func TestPaperExampleDegrees(t *testing.T) {
	// The reconstructed Fig. 3 example: d(f5) = 4 is the paper's quoted d.
	h := New(Config{})
	for _, b := range [][]bundle.FileID{
		{1, 3, 5}, {2, 4, 6, 7}, {1, 5}, {4, 6, 7}, {3, 5}, {5, 6, 7},
	} {
		h.Observe(bundle.New(b...))
	}
	want := map[bundle.FileID]int{1: 2, 2: 1, 3: 2, 4: 2, 5: 4, 6: 3, 7: 3}
	for f, w := range want {
		if got := h.Degree(f); got != w {
			t.Errorf("Degree(f%d) = %d, want %d", f, got, w)
		}
	}
	if h.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d, want 4 (paper: d=4 via f5)", h.MaxDegree())
	}
}

func TestCandidatesFull(t *testing.T) {
	h := New(Config{Truncation: Full, Limit: 2})
	h.Observe(bundle.New(1))
	h.Observe(bundle.New(2))
	h.Observe(bundle.New(3))
	if got := len(h.Candidates()); got != 3 {
		t.Errorf("Full truncation returned %d candidates, want 3", got)
	}
}

func TestCandidatesWindow(t *testing.T) {
	h := New(Config{Truncation: Window, Limit: 2})
	h.Observe(bundle.New(1))
	h.Observe(bundle.New(2))
	h.Observe(bundle.New(3))
	h.Observe(bundle.New(1)) // refresh 1
	cands := h.Candidates()
	if len(cands) != 2 {
		t.Fatalf("window returned %d", len(cands))
	}
	keys := map[string]bool{}
	for _, e := range cands {
		keys[e.Bundle.Key()] = true
	}
	if !keys[bundle.New(1).Key()] || !keys[bundle.New(3).Key()] {
		t.Errorf("window kept wrong entries: %v", keys)
	}
}

func TestCandidatesTopValue(t *testing.T) {
	h := New(Config{Truncation: TopValue, Limit: 2})
	for i := 0; i < 5; i++ {
		h.Observe(bundle.New(1)) // value 5
	}
	for i := 0; i < 3; i++ {
		h.Observe(bundle.New(2)) // value 3
	}
	h.Observe(bundle.New(3)) // value 1
	cands := h.Candidates()
	if len(cands) != 2 {
		t.Fatalf("top-value returned %d", len(cands))
	}
	if cands[0].Value < cands[1].Value {
		t.Error("top-value not sorted descending")
	}
	if cands[0].Bundle.Key() != bundle.New(1).Key() {
		t.Errorf("top candidate = %v", cands[0].Bundle)
	}
}

func TestLocalDegrees(t *testing.T) {
	h := New(Config{Truncation: Window, Limit: 1, LocalDegrees: true})
	h.Observe(bundle.New(1, 2))
	h.Observe(bundle.New(2, 3))
	cands := h.Candidates() // only {2,3}
	df := h.CandidateDegreeFunc(cands)
	if df(2) != 1 {
		t.Errorf("local degree(2) = %d, want 1", df(2))
	}
	// Global degrees still see both requests.
	if h.Degree(2) != 2 {
		t.Errorf("global degree(2) = %d, want 2", h.Degree(2))
	}
	// Without LocalDegrees the candidate degree func is global.
	h2 := New(Config{Truncation: Window, Limit: 1})
	h2.Observe(bundle.New(1, 2))
	h2.Observe(bundle.New(2, 3))
	df2 := h2.CandidateDegreeFunc(h2.Candidates())
	if df2(2) != 2 {
		t.Errorf("global candidate degree(2) = %d, want 2", df2(2))
	}
}

func TestForget(t *testing.T) {
	h := New(Config{})
	h.Observe(bundle.New(1, 2))
	h.Observe(bundle.New(2, 3))
	if !h.Forget(bundle.New(1, 2)) {
		t.Fatal("Forget returned false for existing entry")
	}
	if h.Forget(bundle.New(1, 2)) {
		t.Error("Forget returned true for missing entry")
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
	if h.Degree(1) != 0 {
		t.Errorf("Degree(1) = %d after forget", h.Degree(1))
	}
	if h.Degree(2) != 1 {
		t.Errorf("Degree(2) = %d after forget", h.Degree(2))
	}
	if len(h.Candidates()) != 1 {
		t.Errorf("Candidates = %d", len(h.Candidates()))
	}
}

func TestReset(t *testing.T) {
	h := New(Config{})
	h.Observe(bundle.New(1, 2))
	h.Reset()
	if h.Len() != 0 || h.Clock() != 0 || h.Degree(1) != 0 || len(h.Candidates()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestLookup(t *testing.T) {
	h := New(Config{})
	h.Observe(bundle.New(4, 5))
	if _, ok := h.Lookup(bundle.New(5, 4)); !ok {
		t.Error("Lookup missed canonical-equal bundle")
	}
	if _, ok := h.Lookup(bundle.New(4)); ok {
		t.Error("Lookup found non-existent bundle")
	}
}

func TestTruncationString(t *testing.T) {
	for tr, want := range map[Truncation]string{
		Full: "full", Window: "window", TopValue: "top-value", Truncation(9): "Truncation(9)",
	} {
		if got := tr.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// Property: sum of degrees equals sum of bundle lengths over distinct entries,
// and every candidate set is a subset of the full history.
func TestQuickDegreeConsistency(t *testing.T) {
	f := func(raw [][]uint16, limit uint8) bool {
		h := New(Config{Truncation: Window, Limit: int(limit % 8)})
		for _, ids := range raw {
			if len(ids) == 0 {
				continue
			}
			fids := make([]bundle.FileID, len(ids))
			for i, v := range ids {
				fids[i] = bundle.FileID(v % 16)
			}
			h.Observe(bundle.New(fids...))
		}
		sumDeg := 0
		for f := bundle.FileID(0); f < 16; f++ {
			sumDeg += h.Degree(f)
		}
		sumLen := 0
		for _, e := range New(Config{}).Candidates() {
			_ = e
		}
		full := New(Config{})
		// Rebuild to count distinct lengths.
		seen := map[string]bool{}
		for _, ids := range raw {
			if len(ids) == 0 {
				continue
			}
			fids := make([]bundle.FileID, len(ids))
			for i, v := range ids {
				fids[i] = bundle.FileID(v % 16)
			}
			b := bundle.New(fids...)
			if !seen[b.Key()] {
				seen[b.Key()] = true
				sumLen += b.Len()
			}
			full.Observe(b)
		}
		if sumDeg != sumLen {
			return false
		}
		if len(h.Candidates()) > h.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	h := New(Config{})
	bundles := make([]bundle.Bundle, 512)
	for i := range bundles {
		bundles[i] = bundle.New(bundle.FileID(i), bundle.FileID(i+1), bundle.FileID(2*i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(bundles[i%len(bundles)])
	}
}

func TestDecay(t *testing.T) {
	h := New(Config{})
	for i := 0; i < 8; i++ {
		h.Observe(bundle.New(1, 2))
	}
	h.Observe(bundle.New(3))
	h.Decay(0.5, 0.6) // {1,2} -> 4; {3} -> 0.5 < 0.6 -> forgotten
	if e, ok := h.Lookup(bundle.New(1, 2)); !ok || e.Value != 4 {
		t.Errorf("entry = %+v, %v", e, ok)
	}
	if _, ok := h.Lookup(bundle.New(3)); ok {
		t.Error("low-value entry survived decay")
	}
	if h.Degree(3) != 0 {
		t.Errorf("degree(3) = %d after forget", h.Degree(3))
	}
	if h.Degree(1) != 1 {
		t.Errorf("degree(1) = %d", h.Degree(1))
	}
}

func TestDecayPanicsOnBadFactor(t *testing.T) {
	h := New(Config{})
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("factor %v did not panic", f)
				}
			}()
			h.Decay(f, 0)
		}()
	}
}
