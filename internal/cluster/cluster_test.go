package cluster

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/simulate"
	"fbcache/internal/workload"
)

func unit(bundle.FileID) bundle.Size { return 1 }

func optFactory() policy.Factory {
	return policy.OptFileBundleFactory(core.Options{})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 0, unit, optFactory(), nil); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(100, 2, nil, optFactory(), nil); err == nil {
		t.Error("nil sizeOf accepted")
	}
	if _, err := New(100, 2, unit, nil, nil); err == nil {
		t.Error("nil factory accepted")
	}
	s, err := New(100, 4, unit, optFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 4 {
		t.Errorf("NumNodes = %d", s.NumNodes())
	}
	if s.Node(0).Cache().Capacity() != 25 {
		t.Errorf("per-node capacity = %d, want 25", s.Node(0).Cache().Capacity())
	}
	if s.Name() != "optfilebundle-sharded4" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestAdmitSplitsAcrossNodes(t *testing.T) {
	s, err := New(40, 2, unit, classic.LRUFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Files 1,3 go to node 1; 2,4 to node 0 (modular hashing).
	res := s.Admit(bundle.New(1, 2, 3, 4))
	if res.Hit || res.BytesLoaded != 4 {
		t.Errorf("res = %+v", res)
	}
	if !s.Node(1).Cache().Supports(bundle.New(1, 3)) {
		t.Errorf("node 1 resident = %v", s.Node(1).Cache().Resident())
	}
	if !s.Node(0).Cache().Supports(bundle.New(2, 4)) {
		t.Errorf("node 0 resident = %v", s.Node(0).Cache().Resident())
	}
	// Full-bundle hit needs all shards resident.
	res = s.Admit(bundle.New(1, 2, 3, 4))
	if !res.Hit {
		t.Error("repeat not a hit")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if s.Used() != 4 {
		t.Errorf("Used = %d", s.Used())
	}
}

func TestShardHitRequiresAllShards(t *testing.T) {
	s, err := New(40, 2, unit, classic.LRUFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(bundle.New(1, 2))
	// Evict node 1's file behind the cluster's back.
	if err := s.Node(1).Cache().Evict(1); err != nil {
		t.Fatal(err)
	}
	res := s.Admit(bundle.New(1, 2))
	if res.Hit {
		t.Error("hit despite missing shard")
	}
	if res.BytesLoaded != 1 {
		t.Errorf("loaded %d, want only the missing shard", res.BytesLoaded)
	}
}

func TestShardUnserviceable(t *testing.T) {
	// Per-node capacity 2; a bundle sending 3 files to one node cannot be
	// staged even though the total cache (4) is big enough.
	s, err := New(4, 2, unit, classic.LRUFactory(), func(bundle.FileID) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	res := s.Admit(bundle.New(1, 2, 3))
	if !res.Unserviceable || res.Hit {
		t.Errorf("res = %+v", res)
	}
}

func TestImbalance(t *testing.T) {
	s, err := New(40, 2, unit, classic.LRUFactory(), func(f bundle.FileID) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Imbalance(); got != 1 {
		t.Errorf("empty cluster imbalance = %v", got)
	}
	s.Admit(bundle.New(1, 2, 3)) // everything on node 0
	if got := s.Imbalance(); got != 2 {
		t.Errorf("fully skewed imbalance = %v, want 2 (max/mean with 2 nodes)", got)
	}
}

func TestBadAssignPanics(t *testing.T) {
	s, err := New(10, 2, unit, classic.LRUFactory(), func(bundle.FileID) int { return 99 })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Admit(bundle.New(1))
}

func TestShardingCostVsMonolithic(t *testing.T) {
	// The §2 trade-off, quantified: hashing files to independent disks
	// fragments capacity, so the sharded cache's byte miss ratio is at
	// least the monolithic cache's (same total bytes, same policy).
	spec := workload.DefaultSpec()
	spec.Jobs = 2500
	spec.NumFiles = 120
	spec.NumRequests = 80
	spec.CacheSize = 2 * bundle.GB
	spec.MaxBundleFrac = 0.2
	spec.Popularity = workload.Zipf
	w, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	mono := optFactory()(spec.CacheSize, w.Catalog.SizeFunc())
	colMono, err := simulate.Run(w, mono, simulate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(spec.CacheSize, 4, w.Catalog.SizeFunc(), optFactory(), nil)
	if err != nil {
		t.Fatal(err)
	}
	colShard, err := Run(w, sharded, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("byte miss: monolithic=%.4f sharded4=%.4f imbalance=%.2f",
		colMono.ByteMissRatio(), colShard.ByteMissRatio(), sharded.Imbalance())
	if colShard.ByteMissRatio() < colMono.ByteMissRatio()*0.98 {
		t.Errorf("sharded %.4f mysteriously below monolithic %.4f",
			colShard.ByteMissRatio(), colMono.ByteMissRatio())
	}
	if err := sharded.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, nil, 0); err == nil {
		t.Error("nil inputs accepted")
	}
}
