// Package cluster models the §2 deployment where "an SRM's host that
// consists of a cluster of machines may have its disk cache distributed
// over independent disks of the cluster nodes": files hash to nodes, each
// node runs its own replacement policy over its own disk, and a job's
// request-hit requires every file resident on its assigned node
// simultaneously.
//
// Sharding trades the monolithic cache's global replacement decisions for
// parallel disks; the ShardingStudy experiment quantifies the byte-miss
// cost of that fragmentation.
package cluster

import (
	"fmt"
	"sync"

	"fbcache/internal/bundle"
	"fbcache/internal/metrics"
	"fbcache/internal/policy"
	"fbcache/internal/workload"
)

// AssignFunc maps a file to a node index.
type AssignFunc func(bundle.FileID) int

// Sharded is a cluster-distributed cache: one policy instance per node.
// Admit is serialized by mu; the node policies themselves are the
// single-goroutine policies of internal/policy, so concurrent admissions
// must not interleave inside them either.
type Sharded struct {
	// Immutable after New.
	nodes  []policy.Policy
	assign AssignFunc
	sizeOf bundle.SizeFunc

	mu sync.Mutex
	// scratch reused across admissions to avoid per-call allocation.
	shards [][]bundle.FileID //fbvet:guardedby mu
}

// New builds a sharded cache with `nodes` node-local policies created by
// mk, each with capacity/nodes of the total. assign nil defaults to modular
// hashing.
func New(totalCapacity bundle.Size, numNodes int, sizeOf bundle.SizeFunc, mk policy.Factory, assign AssignFunc) (*Sharded, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", numNodes)
	}
	if sizeOf == nil || mk == nil {
		return nil, fmt.Errorf("cluster: nil SizeFunc or Factory")
	}
	if assign == nil {
		n := numNodes
		assign = func(f bundle.FileID) int { return int(f) % n }
	}
	perNode := totalCapacity / bundle.Size(numNodes)
	s := &Sharded{
		assign: assign,
		sizeOf: sizeOf,
		shards: make([][]bundle.FileID, numNodes),
	}
	for i := 0; i < numNodes; i++ {
		s.nodes = append(s.nodes, mk(perNode, sizeOf))
	}
	return s, nil
}

// NumNodes reports the cluster size.
func (s *Sharded) NumNodes() int { return len(s.nodes) }

// Node exposes one node's policy (for inspection).
func (s *Sharded) Node(i int) policy.Policy { return s.nodes[i] }

// Name identifies the configuration.
func (s *Sharded) Name() string {
	return fmt.Sprintf("%s-sharded%d", s.nodes[0].Name(), len(s.nodes))
}

// Admit splits the bundle across nodes, admits each shard on its node, and
// merges the results: the job hits only if every shard hit.
func (s *Sharded) Admit(b bundle.Bundle) policy.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.shards {
		s.shards[i] = s.shards[i][:0]
	}
	for _, f := range b {
		n := s.assign(f)
		if n < 0 || n >= len(s.nodes) {
			panic(fmt.Sprintf("cluster: assign(%d) = %d outside %d nodes", f, n, len(s.nodes)))
		}
		s.shards[n] = append(s.shards[n], f)
	}

	merged := policy.Result{Hit: true}
	for n, files := range s.shards {
		if len(files) == 0 {
			continue
		}
		res := s.nodes[n].Admit(bundle.New(files...))
		merged.Hit = merged.Hit && res.Hit
		merged.BytesRequested += res.BytesRequested
		merged.BytesLoaded += res.BytesLoaded
		merged.FilesLoaded += res.FilesLoaded
		merged.FilesEvicted += res.FilesEvicted
		merged.Loaded = merged.Loaded.Union(res.Loaded)
		merged.Evicted = merged.Evicted.Union(res.Evicted)
		if res.Unserviceable {
			merged.Unserviceable = true
		}
	}
	if merged.Unserviceable {
		merged.Hit = false
	}
	return merged
}

// CheckInvariants verifies every node's cache.
func (s *Sharded) CheckInvariants() error {
	for i, n := range s.nodes {
		if err := n.Cache().CheckInvariants(); err != nil {
			return fmt.Errorf("cluster: node %d: %w", i, err)
		}
	}
	return nil
}

// Used reports total bytes resident across nodes.
func (s *Sharded) Used() bundle.Size {
	var total bundle.Size
	for _, n := range s.nodes {
		total += n.Cache().Used()
	}
	return total
}

// Imbalance reports max/mean node utilization — the load-balance cost of
// hashing files to disks (1.0 = perfectly even).
func (s *Sharded) Imbalance() float64 {
	if len(s.nodes) == 0 {
		return 0
	}
	var max, total bundle.Size
	for _, n := range s.nodes {
		u := n.Cache().Used()
		total += u
		if u > max {
			max = u
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(s.nodes))
	return float64(max) / mean
}

// Run drives a workload through the sharded cache and collects metrics
// (the cluster counterpart of simulate.Run).
func Run(w *workload.Workload, s *Sharded, warmup int) (*metrics.Collector, error) {
	if w == nil || s == nil {
		return nil, fmt.Errorf("cluster: nil workload or sharded cache")
	}
	col := &metrics.Collector{}
	for i, j := range w.Jobs {
		res := s.Admit(w.Requests[j])
		if i >= warmup {
			col.Record(res)
		}
	}
	return col, nil
}
