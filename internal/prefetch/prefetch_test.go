package prefetch

import (
	"testing"

	"fbcache/internal/bundle"
	"fbcache/internal/policy/classic"
)

func unit(bundle.FileID) bundle.Size { return 1 }

func TestModelConfidence(t *testing.T) {
	m := NewModel()
	m.Observe(bundle.New(1, 2))
	m.Observe(bundle.New(1, 2))
	m.Observe(bundle.New(1, 3))
	if got := m.Confidence(1, 2); got != 2.0/3 {
		t.Errorf("Confidence(1,2) = %v, want 2/3", got)
	}
	if got := m.Confidence(2, 1); got != 1 {
		t.Errorf("Confidence(2,1) = %v, want 1", got)
	}
	if got := m.Confidence(9, 1); got != 0 {
		t.Errorf("Confidence(unseen) = %v", got)
	}
}

func TestModelRelated(t *testing.T) {
	m := NewModel()
	for i := 0; i < 4; i++ {
		m.Observe(bundle.New(1, 2)) // conf(1->2) = 4/5
	}
	m.Observe(bundle.New(1, 3)) // conf(1->3) = 1/5
	rel := m.Related(1, 5, 0.5)
	if len(rel) != 1 || rel[0] != 2 {
		t.Errorf("Related = %v, want [2]", rel)
	}
	rel = m.Related(1, 5, 0.1)
	if len(rel) != 2 || rel[0] != 2 || rel[1] != 3 {
		t.Errorf("Related loose = %v, want [2 3]", rel)
	}
	if m.Related(1, 0, 0) != nil {
		t.Error("k=0 returned files")
	}
	if m.Related(99, 3, 0) != nil {
		t.Error("unseen file returned relations")
	}
}

func TestRelatedDeterministicTieBreak(t *testing.T) {
	m := NewModel()
	m.Observe(bundle.New(1, 5, 3)) // conf(1->5) = conf(1->3) = 1
	rel := m.Related(1, 2, 0.5)
	if len(rel) != 2 || rel[0] != 3 || rel[1] != 5 {
		t.Errorf("Related = %v, want [3 5]", rel)
	}
}

func TestPrefetcherTurnsAssociatedMissesIntoHits(t *testing.T) {
	// {x,y} always requested together; external pressure evicts y; a later
	// {x} admission must prefetch y back so the next {x,y} is a hit. The
	// plain policy misses every round.
	run := func(wrap bool) (hits int) {
		inner := classic.NewLRU(6, unit)
		var admit func(bundle.Bundle) bool
		if wrap {
			w := Wrap(inner, unit, Options{FanOut: 2, MinConfidence: 0.6})
			admit = func(b bundle.Bundle) bool { return w.Admit(b).Hit }
		} else {
			admit = func(b bundle.Bundle) bool { return inner.Admit(b).Hit }
		}
		x, y := bundle.FileID(1), bundle.FileID(2)
		for round := 0; round < 20; round++ {
			admit(bundle.New(x, y)) // learn the association
			if inner.Cache().Contains(y) {
				if err := inner.Cache().Evict(y); err != nil { // external pressure
					t.Fatal(err)
				}
			}
			admit(bundle.New(x)) // hit on x; the wrapper may prefetch y
			if admit(bundle.New(x, y)) {
				hits++
			}
		}
		return hits
	}
	plain, wrapped := run(false), run(true)
	t.Logf("bundle hits: plain lru=%d, lru+prefetch=%d", plain, wrapped)
	if plain != 0 {
		t.Errorf("plain LRU unexpectedly hit %d times", plain)
	}
	if wrapped < 15 {
		t.Errorf("prefetch wrapper hits = %d, want most rounds after learning", wrapped)
	}
}

func TestPrefetcherNeverEvicts(t *testing.T) {
	inner := classic.NewLRU(3, unit)
	w := Wrap(inner, unit, Options{FanOut: 4, MinConfidence: 0.1})
	// Teach strong associations among 4 files that cannot all fit.
	for i := 0; i < 5; i++ {
		w.Admit(bundle.New(1, 2))
		w.Admit(bundle.New(1, 3))
	}
	// Fill the cache exactly; prefetch must not push anything out.
	w.Admit(bundle.New(7, 8, 9))
	if !inner.Cache().Supports(bundle.New(7, 8, 9)) {
		t.Errorf("speculation evicted demanded files; resident = %v", inner.Cache().Resident())
	}
}

func TestPrefetcherAccounting(t *testing.T) {
	inner := classic.NewLRU(10, unit)
	w := Wrap(inner, unit, Options{FanOut: 1, MinConfidence: 0.5})
	w.Admit(bundle.New(1, 2))
	// Evict nothing; drop 2 manually to force a re-fetch via prefetch.
	if err := inner.Cache().Evict(2); err != nil {
		t.Fatal(err)
	}
	res := w.Admit(bundle.New(1)) // hit on 1, prefetches 2
	total, files := w.Prefetched()
	if total != 1 || files != 1 {
		t.Errorf("prefetched = %d bytes / %d files", total, files)
	}
	if res.BytesLoaded != 1 {
		t.Errorf("res.BytesLoaded = %d, want prefetch folded in", res.BytesLoaded)
	}
	if !inner.Cache().Contains(2) {
		t.Error("2 not prefetched")
	}
	if w.Name() != "lru+prefetch" {
		t.Errorf("Name = %q", w.Name())
	}
}

func TestWrapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Wrap(nil, unit, Options{})
}
