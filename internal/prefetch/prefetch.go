// Package prefetch implements the "pre-fetching" leg of §1's optimization
// toolbox: a co-occurrence model learned from the request stream, and a
// policy wrapper that speculatively pulls files strongly associated with
// the current request into *free* cache space (never evicting for
// speculation).
//
// OptFileBundle has its own principled prefetch (Algorithm 2 Step 3,
// core.Options.Prefetch); this wrapper gives the same superpower to the
// classic single-file baselines, quantifying how far association rules
// close the gap to bundle-aware replacement.
package prefetch

import (
	"sort"

	"fbcache/internal/bundle"
	"fbcache/internal/cache"
	"fbcache/internal/floats"
	"fbcache/internal/policy"
)

// Model tracks pairwise co-request statistics between files.
// Confidence(f→g) = co(f,g) / seen(f): the fraction of f's requests that
// also wanted g.
type Model struct {
	co   map[bundle.FileID]map[bundle.FileID]float64
	seen map[bundle.FileID]float64
}

// NewModel returns an empty co-occurrence model.
func NewModel() *Model {
	return &Model{
		co:   make(map[bundle.FileID]map[bundle.FileID]float64),
		seen: make(map[bundle.FileID]float64),
	}
}

// Observe records one request: every file pair in b co-occurred once.
func (m *Model) Observe(b bundle.Bundle) {
	for _, f := range b {
		m.seen[f]++
	}
	for i, f := range b {
		for j, g := range b {
			if i == j {
				continue
			}
			row := m.co[f]
			if row == nil {
				row = make(map[bundle.FileID]float64)
				m.co[f] = row
			}
			row[g]++
		}
	}
}

// Confidence reports P(g requested | f requested) as observed.
func (m *Model) Confidence(f, g bundle.FileID) float64 {
	if floats.AlmostZero(m.seen[f]) {
		return 0
	}
	return m.co[f][g] / m.seen[f]
}

// Related returns up to k files associated with f at confidence >=
// minConfidence, strongest first (ties toward smaller IDs for determinism).
func (m *Model) Related(f bundle.FileID, k int, minConfidence float64) []bundle.FileID {
	row := m.co[f]
	if len(row) == 0 || k <= 0 {
		return nil
	}
	type cand struct {
		id   bundle.FileID
		conf float64
	}
	cands := make([]cand, 0, len(row))
	for g := range row {
		if c := m.Confidence(f, g); c >= minConfidence {
			cands = append(cands, cand{id: g, conf: c})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if !floats.AlmostEqual(cands[i].conf, cands[j].conf) {
			return cands[i].conf > cands[j].conf
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]bundle.FileID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// Options tunes the Prefetcher.
type Options struct {
	// FanOut is the maximum number of speculative files pulled per admitted
	// request (default 2).
	FanOut int
	// MinConfidence is the association threshold (default 0.5).
	MinConfidence float64
}

// Prefetcher wraps a Policy with co-occurrence prefetching. Speculative
// loads go through the inner policy as singleton admissions, but only when
// they fit in free space — speculation never evicts. Prefetch traffic is
// folded into the returned Result's byte counters so comparisons stay
// honest.
type Prefetcher struct {
	inner  policy.Policy
	sizeOf bundle.SizeFunc
	model  *Model
	opts   Options

	prefetchedBytes bundle.Size
	prefetchedFiles int64
}

// Wrap builds a Prefetcher around inner.
func Wrap(inner policy.Policy, sizeOf bundle.SizeFunc, opts Options) *Prefetcher {
	if inner == nil || sizeOf == nil {
		panic("prefetch: nil inner policy or SizeFunc")
	}
	if opts.FanOut <= 0 {
		opts.FanOut = 2
	}
	if opts.MinConfidence <= 0 {
		opts.MinConfidence = 0.5
	}
	return &Prefetcher{inner: inner, sizeOf: sizeOf, model: NewModel(), opts: opts}
}

// Name implements policy.Policy.
func (p *Prefetcher) Name() string { return p.inner.Name() + "+prefetch" }

// Cache implements policy.Policy.
func (p *Prefetcher) Cache() *cache.Cache { return p.inner.Cache() }

// Model exposes the learned association model.
func (p *Prefetcher) Model() *Model { return p.model }

// Prefetched reports cumulative speculative traffic.
func (p *Prefetcher) Prefetched() (bundle.Size, int64) {
	return p.prefetchedBytes, p.prefetchedFiles
}

// Admit implements policy.Policy: learn, admit, then speculate into free
// space.
func (p *Prefetcher) Admit(b bundle.Bundle) policy.Result {
	p.model.Observe(b)
	res := p.inner.Admit(b)
	if res.Unserviceable {
		return res
	}
	c := p.inner.Cache()
	budget := p.opts.FanOut
	for _, f := range b {
		if budget <= 0 {
			break
		}
		for _, g := range p.model.Related(f, p.opts.FanOut, p.opts.MinConfidence) {
			if budget <= 0 {
				break
			}
			if c.Contains(g) {
				continue
			}
			size := p.sizeOf(g)
			if c.Free() < size {
				continue
			}
			// Admit through the policy so its bookkeeping (recency, credits)
			// knows the file; free space guarantees no eviction.
			specRes := p.inner.Admit(bundle.New(g))
			res.BytesLoaded += specRes.BytesLoaded
			res.FilesLoaded += specRes.FilesLoaded
			res.Loaded = res.Loaded.Union(specRes.Loaded)
			p.prefetchedBytes += specRes.BytesLoaded
			p.prefetchedFiles += int64(specRes.FilesLoaded)
			budget--
		}
	}
	return res
}

var _ policy.Policy = (*Prefetcher)(nil)
