package fbcache

import (
	"io"

	"fbcache/internal/experiment"
	"fbcache/internal/metrics"
	"fbcache/internal/mss"
	"fbcache/internal/queue"
	"fbcache/internal/simulate"
	"fbcache/internal/srm"
	"fbcache/internal/trace"
	"fbcache/internal/workload"
)

// Workload generation (§5.1 model) and trace replay.
type (
	// WorkloadSpec describes a synthetic workload; see DefaultWorkloadSpec.
	WorkloadSpec = workload.Spec
	// Workload is a generated or replayed workload.
	Workload = workload.Workload
	// Popularity selects Uniform or Zipf request sampling.
	Popularity = workload.Popularity
)

// Popularity laws.
const (
	Uniform = workload.Uniform
	Zipf    = workload.Zipf
)

// DefaultWorkloadSpec returns the baseline workload configuration.
func DefaultWorkloadSpec() WorkloadSpec { return workload.DefaultSpec() }

// Generate builds a reproducible synthetic workload from the spec.
func Generate(spec WorkloadSpec) (*Workload, error) { return workload.Generate(spec) }

// WriteTraceJSON / ReadTraceJSON archive workloads as JSON lines.
func WriteTraceJSON(dst io.Writer, w *Workload) error { return trace.WriteJSON(dst, w) }

// ReadTraceJSON loads a JSON-lines trace.
func ReadTraceJSON(src io.Reader) (*Workload, error) { return trace.ReadJSON(src) }

// WriteTraceGob / ReadTraceGob archive workloads compactly.
func WriteTraceGob(dst io.Writer, w *Workload) error { return trace.WriteGob(dst, w) }

// ReadTraceGob loads a binary trace.
func ReadTraceGob(src io.Reader) (*Workload, error) { return trace.ReadGob(src) }

// Simulation.
type (
	// SimOptions configures a trace-driven run.
	SimOptions = simulate.Options
	// EventOptions configures the discrete-event (timed) run.
	EventOptions = simulate.EventOptions
	// EventStats summarizes a timed run.
	EventStats = simulate.EventStats
	// Metrics accumulates §1.2 performance measures.
	Metrics = metrics.Collector
	// MSSConfig describes a mass storage system for timed runs.
	MSSConfig = mss.Config
	// Scheduler orders jobs in the admission queue.
	Scheduler = queue.Scheduler
)

// Run drives every job of w through p (the paper's cacheSim loop).
func Run(w *Workload, p Policy, opts SimOptions) (*Metrics, error) {
	return simulate.Run(w, p, opts)
}

// RunEvents runs the timed data-grid simulation (staging delays, pinning,
// bounded concurrency) and reports throughput and response times.
func RunEvents(w *Workload, p Policy, opts EventOptions) (EventStats, error) {
	return simulate.RunEvents(w, p, opts)
}

// FCFSScheduler serves queued jobs in arrival order.
func FCFSScheduler() Scheduler { return queue.FCFS() }

// ScoreScheduler serves the highest-scoring queued job first; pair it with
// (*core.OptFileBundle).RelativeValue via NewOptFileBundle for the paper's
// queued service discipline.
func ScoreScheduler(name string, score func(Bundle) float64) Scheduler {
	return queue.ByScore(name, score)
}

// DefaultMSSConfig models a modest HPSS-class archive.
func DefaultMSSConfig() MSSConfig { return mss.DefaultConfig() }

// SRM service layer.
type (
	// SRM is the thread-safe staging service (§2).
	SRM = srm.SRM
	// SRMServer exposes an SRM over TCP.
	SRMServer = srm.Server
	// SRMClient is the TCP protocol client.
	SRMClient = srm.Client
	// SRMSnapshot is a point-in-time statistics snapshot.
	SRMSnapshot = srm.Snapshot
)

// NewSRM wraps a policy and catalog in a concurrent staging service.
func NewSRM(p Policy, cat *Catalog) *SRM { return srm.New(p, cat) }

// ServeSRM starts a TCP server for the SRM on addr (e.g. "127.0.0.1:0").
func ServeSRM(s *SRM, addr string) (*SRMServer, error) { return srm.Serve(s, addr) }

// DialSRM connects to an SRM server.
func DialSRM(addr string) (*SRMClient, error) { return srm.Dial(addr) }

// Experiments: the paper's evaluation harness.
type (
	// ExperimentConfig scales the figure reproductions.
	ExperimentConfig = experiment.Config
	// ResultTable is one regenerated table or figure.
	ResultTable = experiment.Table
)

// DefaultExperimentConfig returns the laptop-scale experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiment.DefaultConfig() }
