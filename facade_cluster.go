package fbcache

import (
	"fbcache/internal/cluster"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/prefetch"
)

// Cluster-distributed caches (§2: "disk cache distributed over independent
// disks of the cluster nodes").
type (
	// ShardedCache distributes the disk cache across node-local policies.
	ShardedCache = cluster.Sharded
	// PolicyFactory builds fresh policy instances (one per node / run).
	PolicyFactory = policy.Factory
)

// NewShardedCache builds a cluster cache: numNodes node-local policies of
// totalCapacity/numNodes each; files hash to nodes (assign nil = modular).
func NewShardedCache(totalCapacity Size, numNodes int, sizeOf SizeFunc, mk PolicyFactory, assign func(FileID) int) (*ShardedCache, error) {
	return cluster.New(totalCapacity, numNodes, sizeOf, mk, assign)
}

// OptFileBundlePolicyFactory returns a factory for default-configured
// OptFileBundle policies (cache-resident history), for sharded caches and
// experiment sweeps.
func OptFileBundlePolicyFactory() PolicyFactory {
	return policy.OptFileBundleFactory(core.Options{
		History: history.Config{Truncation: history.CacheResident},
	})
}

// Association prefetching (§1's "pre-fetching").
type (
	// PrefetchModel is the learned file co-occurrence model.
	PrefetchModel = prefetch.Model
	// Prefetcher wraps a policy with co-occurrence prefetching.
	Prefetcher = prefetch.Prefetcher
	// PrefetchOptions tunes fan-out and confidence threshold.
	PrefetchOptions = prefetch.Options
)

// WithAssociationPrefetch wraps any policy with co-occurrence prefetching
// into free cache space (speculation never evicts).
func WithAssociationPrefetch(inner Policy, sizeOf SizeFunc, opts PrefetchOptions) *Prefetcher {
	return prefetch.Wrap(inner, sizeOf, opts)
}
