// Package fbcache is a Go implementation of the file-bundle caching system
// from "Optimal File-Bundle Caching Algorithms for Data-Grids" (Otoo, Rotem,
// Romosan; SC 2004).
//
// In data-grid workloads a job needs *all* of its files in the disk cache
// simultaneously (a file-bundle) before it can run. Classic replacement
// policies rank files individually and routinely hold useless combinations;
// the paper's OptFileBundle policy instead tracks the bundles requested in
// the past and re-selects, on every replacement, the set of whole requests
// worth keeping — a greedy approximation (OptCacheSelect) to an NP-hard
// generalized-knapsack problem with a proven (1−e^{−1/d}) bound.
//
// This package is the public facade. It re-exports the building blocks:
//
//   - NewCache: the OptFileBundle policy over a fresh cache (the paper's
//     contribution), configurable via functional options;
//   - NewLandlord, NewLRU, NewLFU, NewGDSF, NewFIFO, NewMRU, NewRandom:
//     bundle-adapted baselines;
//   - Catalog / Bundle: the file and request vocabulary;
//   - Generate / Run / RunEvents: the §5.1 workload model and the cacheSim
//     simulators;
//   - NewSRM / ServeSRM / DialSRM: the concurrent Storage Resource Manager
//     service with its TCP protocol.
//
// A minimal session:
//
//	cat := fbcache.NewCatalog()
//	energy := cat.Add("evt-energy", 2*fbcache.GB)
//	momentum := cat.Add("evt-momentum", 1*fbcache.GB)
//	cache := fbcache.NewCache(10*fbcache.GB, cat.SizeFunc())
//	res := cache.Admit(fbcache.NewBundle(energy, momentum))
//	fmt.Println(res.Hit, res.BytesLoaded)
package fbcache

import (
	"fbcache/internal/bundle"
	"fbcache/internal/core"
	"fbcache/internal/history"
	"fbcache/internal/policy"
	"fbcache/internal/policy/classic"
	"fbcache/internal/policy/landlord"
)

// Core vocabulary, aliased from the internal packages so downstream code can
// name every type it receives.
type (
	// FileID identifies a file in a Catalog.
	FileID = bundle.FileID
	// Size is a byte count.
	Size = bundle.Size
	// Bundle is a canonical set of files a job needs simultaneously.
	Bundle = bundle.Bundle
	// SizeFunc reports file sizes.
	SizeFunc = bundle.SizeFunc
	// Catalog maps file names to IDs and sizes.
	Catalog = bundle.Catalog
	// Policy is a bundle-aware replacement policy bound to its own cache.
	Policy = policy.Policy
	// Result reports the effect of one admission.
	Result = policy.Result
)

// Size units.
const (
	KB = bundle.KB
	MB = bundle.MB
	GB = bundle.GB
	TB = bundle.TB
)

// NewBundle builds a canonical bundle from file IDs.
func NewBundle(ids ...FileID) Bundle { return bundle.New(ids...) }

// NewCatalog returns an empty file catalog.
func NewCatalog() *Catalog { return bundle.NewCatalog() }

// Option configures NewCache.
type Option func(*core.Options)

// WithHistoryWindow truncates the selection candidates to the n most
// recently seen distinct requests.
func WithHistoryWindow(n int) Option {
	return func(o *core.Options) {
		o.History.Truncation = history.Window
		o.History.Limit = n
	}
}

// WithCacheResidentHistory restricts selection candidates to requests the
// cache currently supports — the paper's §5.3 production setting, keeping
// per-admission cost constant.
func WithCacheResidentHistory() Option {
	return func(o *core.Options) { o.History.Truncation = history.CacheResident }
}

// WithFullHistory offers the complete request history to every replacement
// decision (the paper's default analytical model; cost grows with history).
func WithFullHistory() Option {
	return func(o *core.Options) { o.History.Truncation = history.Full }
}

// WithPrefetch enables the literal Algorithm 2 Step 3: non-resident files of
// selected historical requests are fetched eagerly.
func WithPrefetch() Option {
	return func(o *core.Options) { o.Prefetch = true }
}

// WithLiteralEviction rebuilds the cache to exactly the keep-set on every
// replacement (the literal Algorithm 2) instead of evicting lazily.
func WithLiteralEviction() Option {
	return func(o *core.Options) { o.LiteralEvict = true }
}

// WithSeededSelection runs the §4 k-seeded variant of OptCacheSelect on
// every replacement, raising the approximation bound to (1−e^{−1/d}) at
// polynomial extra cost. k is clamped to {1,2}.
func WithSeededSelection(k int) Option {
	return func(o *core.Options) {
		if k < 1 {
			k = 1
		}
		if k > 2 {
			k = 2
		}
		o.SeedK = k
	}
}

// NewCache returns the paper's OptFileBundle replacement policy over a fresh
// cache of the given capacity. By default it uses the practical "resort"
// greedy with cache-resident history truncation; see the Options for the
// literal variants. Policies returned by this package are not safe for
// concurrent use — wrap them in an SRM (NewSRM) to share across goroutines.
func NewCache(capacity Size, sizeOf SizeFunc, opts ...Option) Policy {
	o := core.Options{History: history.Config{Truncation: history.CacheResident}}
	for _, opt := range opts {
		opt(&o)
	}
	return policy.WrapOptFileBundle(core.New(capacity, sizeOf, o))
}

// NewOptFileBundle is like NewCache but returns the concrete policy type,
// exposing History(), RelativeValue() and the other OptFileBundle-specific
// methods.
func NewOptFileBundle(capacity Size, sizeOf SizeFunc, opts ...Option) *core.OptFileBundle {
	o := core.Options{History: history.Config{Truncation: history.CacheResident}}
	for _, opt := range opts {
		opt(&o)
	}
	return core.New(capacity, sizeOf, o)
}

// WrapPolicy lifts a concrete *core.OptFileBundle (from NewOptFileBundle)
// to the Policy interface, e.g. for Run after wiring its RelativeValue into
// a queue scheduler.
func WrapPolicy(p *core.OptFileBundle) Policy { return policy.WrapOptFileBundle(p) }

// NewLandlord returns the bundle-adapted Landlord baseline (Algorithm 3).
func NewLandlord(capacity Size, sizeOf SizeFunc) Policy {
	return landlord.New(capacity, sizeOf)
}

// NewLRU returns a bundle-adapted least-recently-used policy.
func NewLRU(capacity Size, sizeOf SizeFunc) Policy { return classic.NewLRU(capacity, sizeOf) }

// NewLFU returns a bundle-adapted least-frequently-used policy.
func NewLFU(capacity Size, sizeOf SizeFunc) Policy { return classic.NewLFU(capacity, sizeOf) }

// NewGDSF returns a bundle-adapted Greedy-Dual-Size-Frequency policy.
func NewGDSF(capacity Size, sizeOf SizeFunc) Policy { return classic.NewGDSF(capacity, sizeOf) }

// NewFIFO returns a bundle-adapted first-in-first-out policy.
func NewFIFO(capacity Size, sizeOf SizeFunc) Policy { return classic.NewFIFO(capacity, sizeOf) }

// NewMRU returns a bundle-adapted most-recently-used policy.
func NewMRU(capacity Size, sizeOf SizeFunc) Policy { return classic.NewMRU(capacity, sizeOf) }

// NewRandom returns a bundle-adapted random-replacement policy.
func NewRandom(capacity Size, sizeOf SizeFunc, seed int64) Policy {
	return classic.NewRandom(capacity, sizeOf, seed)
}
