# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the two in sync.

GO ?= go

.PHONY: all build test lint vet fbvet race bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint = the stock vet suite plus fbvet, the repo-specific analyzers
# (mapiter, floateq, lockcheck, sizeunits). Both must be clean; findings are
# suppressed only by a justified //fbvet:allow directive.
lint: vet fbvet

vet:
	$(GO) vet ./...

fbvet:
	$(GO) run ./cmd/fbvet ./...

# race runs the full suite under the race detector, including the dedicated
# concurrency tests in internal/srm and internal/store.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
