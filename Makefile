# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the two in sync.

GO ?= go

# Per-target budget for `make fuzz`; raise locally for deeper hunts, e.g.
#   make fuzz FUZZTIME=5m
FUZZTIME ?= 30s

.PHONY: all build test test-invariant lint vet fbvet sarif doc-lint perfgate perfgate-sarif race bench bench-guard bench-json bench-require bench-compare bench-json-replicate bench-require-replicate bench-srm bench-require-srm trace-check fuzz soak clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-invariant rebuilds with the fbinvariant tag, arming the
# internal/invariant checks (capacity, atomic admission, Landlord credits,
# ranking monotonicity) inside every test and fuzz-seed replay.
test-invariant:
	$(GO) test -tags fbinvariant ./...

# lint = the stock vet suite plus fbvet, the repo-specific analyzers
# (mapiter, floateq, lockcheck, sizeunits, ndtaint, errflow, hotalloc,
# retrybound, pkgdoc, and the interprocedural concurrency suite: lockorder,
# guardedby, goroleak, allowcheck). Both must be clean; findings are
# suppressed only by a justified //fbvet:allow directive, and allowcheck
# flags directives that no longer suppress anything.
lint: vet fbvet

vet:
	$(GO) vet ./...

fbvet:
	$(GO) run ./cmd/fbvet ./...

# sarif emits the fbvet findings as a SARIF 2.1.0 log (fbvet.sarif) and
# structurally validates it — the artifact CI uploads for code scanning.
sarif:
	$(GO) run ./cmd/fbvet -format=sarif ./... > fbvet.sarif
	$(GO) run ./cmd/fbvet -validate fbvet.sarif

# doc-lint runs only the documentation contract: every package must carry a
# package comment (opening "Package <name>" for library packages) stating
# the paper section it implements and its pipeline role.
doc-lint:
	$(GO) run ./cmd/fbvet -run pkgdoc ./...

# perfgate runs the fbvet performance-contract suite (internal/analyzers/perf,
# DESIGN.md §11): a real `go build -gcflags='-m -m -d=ssa/check_bce/debug=1'`
# sweep whose escape-analysis, inlining, and bounds-check diagnostics are
# checked against the //fbvet:noescape, //fbvet:inline, and //fbvet:nobce
# annotations the perf manifest pins on the hot paths. The build cache replays
# diagnostics for unchanged packages, so repeat runs are cheap.
perfgate:
	$(GO) run ./cmd/fbvet -perf ./...

# perfgate-sarif emits the perf-contract findings as SARIF (fbvet-perf.sarif)
# and validates the log — the artifact CI uploads next to the base-suite one.
perfgate-sarif:
	$(GO) run ./cmd/fbvet -perf -format=sarif ./... > fbvet-perf.sarif
	$(GO) run ./cmd/fbvet -validate fbvet-perf.sarif

# race runs the full suite under the race detector, including the dedicated
# concurrency tests in internal/srm and internal/store.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-guard runs the no-op-tracer overhead microbenchmarks: the /baseline
# (no tracer) and /nop (NopTracer installed) variants of the OptCacheSelect
# and Landlord hot loops must report identical allocs/op — tracing must cost
# nothing when off. -benchtime=100x keeps it fast enough to gate CI; compare
# ns/op by eye or with benchstat on a quiet machine.
bench-guard:
	$(GO) test -run '^$$' -bench 'BenchmarkOptCacheSelect' -benchmem -benchtime=100x ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkLandlord$$' -benchmem -benchtime=100x ./internal/policy/landlord/
	$(GO) test -run '^$$' -bench 'BenchmarkSpan(Disabled|Enabled|Promoted)' -benchmem -benchtime=100x ./internal/obs/span/

# bench-json runs the core/landlord/simulate benchmarks and converts the
# text output into schema-versioned JSON (BENCH_core.json) via benchjson —
# one point of the benchmark trajectory. The -require flags make a run that
# silently lost an expected benchmark fail instead of writing a thin file.
bench-json:
	$(GO) test -run '^$$' -bench 'OptCacheSelect|BenchmarkLandlord|RunEvents|Run(OptFileBundle|Landlord)1000' \
		-benchmem -benchtime=100x ./internal/core/ ./internal/policy/landlord/ ./internal/simulate/ \
		| $(GO) run ./cmd/benchjson -require OptCacheSelect -require Landlord \
			-require RunEvents -require RunOptFileBundle1000 -out BENCH_core.json
	@echo wrote BENCH_core.json

# bench-require re-runs the bench-json benchmarks and compares against the
# checked-in BENCH_core.json: any lost benchmark or allocs/op increase
# beyond 1% fails (the hot loops are near-deterministic; the 1% absorbs
# ±1-alloc amortized-map-growth jitter at -benchtime=100x); ns/op may
# drift up to NSRATIO× before failing (shared runners are noisy — the
# alloc gate is the load-bearing one). Regenerate the baseline with
# `make bench-json` when a perf change is intentional.
NSRATIO ?= 10
bench-require:
	$(GO) test -run '^$$' -bench 'OptCacheSelect|BenchmarkLandlord|RunEvents|Run(OptFileBundle|Landlord)1000' \
		-benchmem -benchtime=100x ./internal/core/ ./internal/policy/landlord/ ./internal/simulate/ \
		| $(GO) run ./cmd/benchjson -require OptCacheSelect -require Landlord \
			-require RunEvents -require RunOptFileBundle1000 \
			-baseline BENCH_core.json -max-ns-ratio $(NSRATIO) -max-alloc-ratio 1.01 -out /dev/null

# bench-compare re-runs the bench-json benchmarks against the checked-in
# baseline and writes the before/after table to bench-compare.md — the
# artifact CI uploads so perf deltas are reviewable in the PR. The table is
# written even when the comparison regresses (the exit code still fails the
# step); NSRATIO gates timing exactly as in bench-require.
bench-compare:
	$(GO) test -run '^$$' -bench 'OptCacheSelect|BenchmarkLandlord|RunEvents|Run(OptFileBundle|Landlord)1000' \
		-benchmem -benchtime=100x ./internal/core/ ./internal/policy/landlord/ ./internal/simulate/ \
		| $(GO) run ./cmd/benchjson -require OptCacheSelect -require Landlord \
			-require RunEvents -require RunOptFileBundle1000 \
			-baseline BENCH_core.json -max-ns-ratio $(NSRATIO) -max-alloc-ratio 1.01 \
			-markdown bench-compare.md -out /dev/null
	@echo wrote bench-compare.md

# bench-json-replicate snapshots the replication planner's benchmarks
# (static Plan, per-arrival predictor fold, full Replan epoch) into
# BENCH_replicate.json — the planner runs inside the event loop every epoch,
# so its cost curve is gated like the core select loops.
bench-json-replicate:
	$(GO) test -run '^$$' -bench 'BenchmarkPlan|BenchmarkPredictorObserve|BenchmarkReplan' \
		-benchmem -benchtime=100x ./internal/replicate/ \
		| $(GO) run ./cmd/benchjson -require Plan -require PredictorObserve -require Replan -out BENCH_replicate.json
	@echo wrote BENCH_replicate.json

# bench-require-replicate compares a fresh run against the checked-in
# BENCH_replicate.json under the same thresholds as bench-require.
bench-require-replicate:
	$(GO) test -run '^$$' -bench 'BenchmarkPlan|BenchmarkPredictorObserve|BenchmarkReplan' \
		-benchmem -benchtime=100x ./internal/replicate/ \
		| $(GO) run ./cmd/benchjson -require Plan -require PredictorObserve -require Replan \
			-baseline BENCH_replicate.json -max-ns-ratio $(NSRATIO) -max-alloc-ratio 1.01 -out /dev/null

# bench-srm snapshots the serving path's closed-loop latency SLO point into
# BENCH_srm_latency.json: srmbench drives an in-process SRM server (span
# flight recorder attached) over loopback TCP and reports the
# client-observed stage+release p50/p99 and throughput as go-bench lines
# that benchjson converts. Regenerate when a serving-path change moves the
# quantiles intentionally.
bench-srm:
	$(GO) run ./cmd/srmbench -self -latency -clients 4 -jobs 50 \
		| $(GO) run ./cmd/benchjson -require SRMStageP50 -require SRMStageP99 -require SRMThroughput \
			-out BENCH_srm_latency.json
	@echo wrote BENCH_srm_latency.json

# bench-require-srm re-runs the latency bench and gates only on presence
# against the checked-in BENCH_srm_latency.json: every baseline quantile
# must still be emitted (a run that silently lost the SLO numbers fails).
# Wall-clock quantiles over loopback TCP on shared runners are far too
# noisy for a ratio gate, so the timing comparison stays off (-max-ns-ratio
# 0); trend review happens on the checked-in trajectory instead.
bench-require-srm:
	$(GO) run ./cmd/srmbench -self -latency -clients 4 -jobs 50 \
		| $(GO) run ./cmd/benchjson -require SRMStageP50 -require SRMStageP99 -require SRMThroughput \
			-baseline BENCH_srm_latency.json -max-ns-ratio 0 -out /dev/null

# trace-check replays the golden event trace through the offline validator:
# reconstructed residency must satisfy the cache invariants at the golden
# workload's capacity (7 bytes).
trace-check:
	$(GO) run ./cmd/fbtrace validate -capacity 7 internal/simulate/testdata/golden_trace.jsonl
	$(GO) run ./cmd/fbtrace validate internal/simulate/testdata/golden_replica_trace.jsonl

# fuzz gives each harness FUZZTIME of coverage-guided search on top of the
# checked-in corpora (testdata/fuzz/...). The Landlord target runs with
# invariants armed so every generated input also probes the in-line checks.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSelectFastMatchesReference -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzSelectHalfBound -fuzztime $(FUZZTIME) ./internal/solver/
	$(GO) test -run '^$$' -fuzz FuzzLandlordInvariants -fuzztime $(FUZZTIME) -tags fbinvariant ./internal/policy/landlord/

# soak replays the fault-injection scenarios with invariants armed: the
# multi-policy fault soak, the churn+correlated generated-scenario soak with
# the epoch re-planner running, and the determinism and bit-identity gates
# for the resilience and replication layers.
soak:
	$(GO) test -tags fbinvariant ./internal/simulate/ -run 'TestFaultSoak|TestFaultSoakChurnCorrelated|TestFaultsDeterministic|TestFaultsZeroScenarioBitIdentical|TestReplicationDeterministic|TestReplicationZeroBudgetBitIdentical' -v

clean:
	$(GO) clean ./...
