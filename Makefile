# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the two in sync.

GO ?= go

# Per-target budget for `make fuzz`; raise locally for deeper hunts, e.g.
#   make fuzz FUZZTIME=5m
FUZZTIME ?= 30s

.PHONY: all build test test-invariant lint vet fbvet race bench fuzz soak clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-invariant rebuilds with the fbinvariant tag, arming the
# internal/invariant checks (capacity, atomic admission, Landlord credits,
# ranking monotonicity) inside every test and fuzz-seed replay.
test-invariant:
	$(GO) test -tags fbinvariant ./...

# lint = the stock vet suite plus fbvet, the repo-specific analyzers
# (mapiter, floateq, lockcheck, sizeunits, ndtaint, errflow, hotalloc,
# retrybound, allowcheck). Both must be clean; findings are suppressed only
# by a justified //fbvet:allow directive.
lint: vet fbvet

vet:
	$(GO) vet ./...

fbvet:
	$(GO) run ./cmd/fbvet ./...

# race runs the full suite under the race detector, including the dedicated
# concurrency tests in internal/srm and internal/store.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# fuzz gives each harness FUZZTIME of coverage-guided search on top of the
# checked-in corpora (testdata/fuzz/...). The Landlord target runs with
# invariants armed so every generated input also probes the in-line checks.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSelectFastMatchesReference -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzSelectHalfBound -fuzztime $(FUZZTIME) ./internal/solver/
	$(GO) test -run '^$$' -fuzz FuzzLandlordInvariants -fuzztime $(FUZZTIME) -tags fbinvariant ./internal/policy/landlord/

# soak replays the fault-injection scenarios with invariants armed: the
# multi-policy fault soak plus the determinism and zero-scenario bit-identity
# gates for the resilience layer (internal/faults + the retry/failover paths).
soak:
	$(GO) test -tags fbinvariant ./internal/simulate/ -run 'TestFaultSoak|TestFaultsDeterministic|TestFaultsZeroScenarioBitIdentical' -v

clean:
	$(GO) clean ./...
