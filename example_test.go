package fbcache_test

import (
	"fmt"

	"fbcache"
)

// The smallest useful session: a catalog, a cache, two admissions.
func Example() {
	cat := fbcache.NewCatalog()
	energy := cat.Add("evt-energy", 2*fbcache.GB)
	momentum := cat.Add("evt-momentum", 1*fbcache.GB)

	cache := fbcache.NewCache(10*fbcache.GB, cat.SizeFunc())

	res := cache.Admit(fbcache.NewBundle(energy, momentum))
	fmt.Println("hit:", res.Hit, "loaded:", res.BytesLoaded)

	res = cache.Admit(fbcache.NewBundle(energy, momentum))
	fmt.Println("hit:", res.Hit, "loaded:", res.BytesLoaded)
	// Output:
	// hit: false loaded: 3.00GB
	// hit: true loaded: 0B
}

// The §3 worked example: the best cache content supports three of six
// requests while the three most popular files support only one.
func ExampleNewCache_paperExample() {
	cat := fbcache.NewCatalog()
	f := make([]fbcache.FileID, 8)
	for i := 1; i <= 7; i++ {
		f[i] = cat.Add(fmt.Sprintf("f%d", i), 1)
	}
	requests := []fbcache.Bundle{
		fbcache.NewBundle(f[1], f[3], f[5]),
		fbcache.NewBundle(f[2], f[4], f[6], f[7]),
		fbcache.NewBundle(f[1], f[5]),
		fbcache.NewBundle(f[4], f[6], f[7]),
		fbcache.NewBundle(f[3], f[5]),
		fbcache.NewBundle(f[5], f[6], f[7]),
	}
	supports := func(content fbcache.Bundle) int {
		n := 0
		for _, r := range requests {
			if r.SubsetOf(content) {
				n++
			}
		}
		return n
	}
	fmt.Println("popular {f5,f6,f7}:", supports(fbcache.NewBundle(f[5], f[6], f[7])), "of 6")
	fmt.Println("optimal {f1,f3,f5}:", supports(fbcache.NewBundle(f[1], f[3], f[5])), "of 6")
	// Output:
	// popular {f5,f6,f7}: 1 of 6
	// optimal {f1,f3,f5}: 3 of 6
}

// Generating a reproducible §5.1 workload and simulating a policy over it.
func ExampleRun() {
	spec := fbcache.DefaultWorkloadSpec()
	spec.Jobs = 1000
	spec.Popularity = fbcache.Zipf
	w, err := fbcache.Generate(spec)
	if err != nil {
		panic(err)
	}
	p := fbcache.NewCache(spec.CacheSize, w.Catalog.SizeFunc())
	col, err := fbcache.Run(w, p, fbcache.SimOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("jobs:", col.Jobs())
	fmt.Println("byte miss ratio in (0,1):", col.ByteMissRatio() > 0 && col.ByteMissRatio() < 1)
	// Output:
	// jobs: 1000
	// byte miss ratio in (0,1): true
}

// Staging through the concurrent SRM service with pinning.
func ExampleNewSRM() {
	cat := fbcache.NewCatalog()
	cat.Add("temperature.nc", fbcache.GB)
	cat.Add("humidity.nc", fbcache.GB)
	service := fbcache.NewSRM(fbcache.NewCache(4*fbcache.GB, cat.SizeFunc()), cat)

	release, res, err := service.StageNames([]string{"temperature.nc", "humidity.nc"})
	if err != nil {
		panic(err)
	}
	fmt.Println("staged, hit:", res.Hit)
	release()
	fmt.Println("active after release:", service.Stats().ActiveJobs)
	// Output:
	// staged, hit: false
	// active after release: 0
}

// Submitting work to the job service layer.
func ExampleNewJobManager() {
	cat := fbcache.NewCatalog()
	a := cat.Add("bins/a.bm", fbcache.MB)
	b := cat.Add("bins/b.bm", fbcache.MB)
	service := fbcache.NewSRM(fbcache.NewCache(8*fbcache.MB, cat.SizeFunc()), cat)
	mgr := fbcache.NewJobManager(service, fbcache.JobConfig{Workers: 2})
	defer mgr.Close()

	done, err := mgr.Submit(fbcache.JobSpec{
		Bundle:  fbcache.NewBundle(a, b),
		Process: func() error { return nil }, // runs with the bundle pinned
	})
	if err != nil {
		panic(err)
	}
	res := <-done
	fmt.Println("err:", res.Err, "hit:", res.Hit)
	// Output:
	// err: <nil> hit: false
}
