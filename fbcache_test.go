package fbcache

import (
	"bytes"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cat := NewCatalog()
	energy := cat.Add("evt-energy", 2*GB)
	momentum := cat.Add("evt-momentum", 1*GB)
	particles := cat.Add("evt-particles", 3*GB)

	cache := NewCache(4*GB, cat.SizeFunc())
	res := cache.Admit(NewBundle(energy, momentum))
	if res.Hit || res.BytesLoaded != 3*GB {
		t.Errorf("cold admit: %+v", res)
	}
	if res = cache.Admit(NewBundle(momentum, energy)); !res.Hit {
		t.Error("repeat not a hit")
	}
	// particles+energy (5GB) exceeds... 3+2 = 5 > 4GB capacity: unserviceable.
	if res = cache.Admit(NewBundle(particles, energy)); !res.Unserviceable {
		t.Errorf("oversized bundle: %+v", res)
	}
	// particles alone forces replacement.
	if res = cache.Admit(NewBundle(particles)); res.BytesLoaded != 3*GB {
		t.Errorf("replacement admit: %+v", res)
	}
	if err := cache.Cache().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllConstructorsProduceWorkingPolicies(t *testing.T) {
	cat := NewCatalog()
	var ids []FileID
	for i := 0; i < 8; i++ {
		ids = append(ids, cat.AddAnonymous(MB))
	}
	policies := []Policy{
		NewCache(4*MB, cat.SizeFunc()),
		NewCache(4*MB, cat.SizeFunc(), WithHistoryWindow(16)),
		NewCache(4*MB, cat.SizeFunc(), WithFullHistory()),
		NewCache(4*MB, cat.SizeFunc(), WithPrefetch(), WithLiteralEviction()),
		NewCache(4*MB, cat.SizeFunc(), WithSeededSelection(2)),
		NewCache(4*MB, cat.SizeFunc(), WithCacheResidentHistory()),
		NewLandlord(4*MB, cat.SizeFunc()),
		NewLRU(4*MB, cat.SizeFunc()),
		NewLFU(4*MB, cat.SizeFunc()),
		NewGDSF(4*MB, cat.SizeFunc()),
		NewFIFO(4*MB, cat.SizeFunc()),
		NewMRU(4*MB, cat.SizeFunc()),
		NewRandom(4*MB, cat.SizeFunc(), 1),
	}
	seen := map[string]bool{}
	for _, p := range policies {
		for step := 0; step < 40; step++ {
			b := NewBundle(ids[step%8], ids[(step*3+1)%8])
			res := p.Admit(b)
			if !res.Unserviceable && !p.Cache().Supports(b) {
				t.Fatalf("%s: admitted bundle not resident", p.Name())
			}
		}
		if err := p.Cache().CheckInvariants(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
		seen[p.Name()] = true
	}
	if len(seen) < 9 {
		t.Errorf("names not distinctive enough: %v", seen)
	}
}

func TestSeededSelectionClamps(t *testing.T) {
	cat := NewCatalog()
	cat.AddAnonymous(MB)
	// k=0 clamps to 1; k=5 clamps to 2; both must build working policies.
	for _, k := range []int{0, 5} {
		p := NewCache(4*MB, cat.SizeFunc(), WithSeededSelection(k))
		p.Admit(NewBundle(0))
	}
}

func TestWorkloadSimFacade(t *testing.T) {
	spec := DefaultWorkloadSpec()
	spec.Jobs = 300
	spec.NumFiles = 60
	spec.NumRequests = 40
	spec.CacheSize = 1 * GB
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := NewCache(spec.CacheSize, w.Catalog.SizeFunc())
	col, err := Run(w, p, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if col.Jobs() != 300 {
		t.Errorf("jobs = %d", col.Jobs())
	}

	// Trace round trip through the facade.
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Jobs) != len(w.Jobs) {
		t.Errorf("trace jobs = %d", len(w2.Jobs))
	}

	// Timed run.
	st, err := RunEvents(w, NewCache(spec.CacheSize, w.Catalog.SizeFunc()), EventOptions{
		ArrivalRate: 10,
		MSS:         DefaultMSSConfig(),
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 300 {
		t.Errorf("event jobs = %d", st.Jobs)
	}
}

func TestQueuedFacade(t *testing.T) {
	spec := DefaultWorkloadSpec()
	spec.Jobs = 200
	spec.NumFiles = 60
	spec.NumRequests = 40
	spec.CacheSize = 1 * GB
	spec.Popularity = Zipf
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptFileBundle(spec.CacheSize, w.Catalog.SizeFunc())
	col, err := Run(w, WrapPolicy(opt), SimOptions{
		QueueLength: 10,
		Scheduler:   ScoreScheduler("relative-value", opt.RelativeValue),
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.Jobs() != 200 {
		t.Errorf("jobs = %d", col.Jobs())
	}
	_ = FCFSScheduler().Name()
}

func TestSRMFacade(t *testing.T) {
	cat := NewCatalog()
	cat.Add("a", MB)
	cat.Add("b", MB)
	s := NewSRM(NewCache(4*MB, cat.SizeFunc()), cat)
	srv, err := ServeSRM(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialSRM(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	token, _, loaded, err := c.Stage("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2*MB {
		t.Errorf("loaded = %v", loaded)
	}
	if err := c.Release(token); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Jobs != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestExperimentFacade(t *testing.T) {
	cfg := DefaultExperimentConfig()
	if cfg.Jobs <= 0 {
		t.Error("default experiment config empty")
	}
	var tab *ResultTable // the alias must be usable
	_ = tab
}
